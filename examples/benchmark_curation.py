"""Benchmark curation at scale: build a private text-to-SQL benchmark and evaluate models on it.

The downstream purpose of BenchPress is producing a domain-specific benchmark
that an organisation can use to evaluate text-to-SQL models on *their* data.
This example:

1. generates a Beaver-like enterprise workload (stands in for private logs),
2. annotates a slice of it with the BenchPress pipeline,
3. exports the curated benchmark to JSON,
4. evaluates several simulated text-to-SQL models on the curated benchmark
   using execution accuracy — the Figure 1 methodology applied to a freshly
   curated private benchmark.

Run with:  python examples/benchmark_curation.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core import AnnotationPipeline, TaskConfig, export_benchmark_json
from repro.evaluation import SimulatedText2SQLModel
from repro.metrics import compare_execution
from repro.workloads import build_benchmark


def main() -> None:
    workload = build_benchmark("Beaver", seed=3, row_scale=0.001, query_count=12)
    print(f"Generated enterprise workload: {len(workload.schema.tables)} tables, "
          f"{len(workload.queries)} log queries")

    pipeline = AnnotationPipeline(
        workload.schema,
        config=TaskConfig(model_name="gpt-4o", num_candidates=4),
        dataset_name=workload.name,
    )
    for term, explanation in workload.spec.domain_terms.items():
        pipeline.feedback_loop.knowledge.add(term, explanation)

    records = [pipeline.annotate(query.sql, query_id=query.query_id) for query in workload.queries]
    output = Path("curated_benchmark.json")
    export_benchmark_json(records, output)
    print(f"Curated benchmark with {len(records)} (NL, SQL) pairs written to {output}\n")

    print("Evaluating text-to-SQL models on the curated benchmark (execution accuracy):")
    for model_name in ("GPT-4o", "Llama3.1-70B-lt", "Llama3.1-8B-lt", "contextModel"):
        model = SimulatedText2SQLModel.for_workload(model_name, workload)
        matches = 0
        for record in records:
            predicted = model.predict(record.nl, record.sql)
            if compare_execution(workload.database, record.sql, predicted).match:
                matches += 1
        accuracy = matches / len(records)
        print(f"  {model_name:<18} {accuracy * 100:5.1f}%")

    print("\nLow scores on a freshly curated private benchmark are exactly the "
          "deployment-risk signal BenchPress is designed to surface before rollout.")


if __name__ == "__main__":
    main()
