"""End-to-end telemetry tour: metrics, spans, EXPLAIN ANALYZE, slow queries.

Runs a two-tenant annotation drain with a live :class:`~repro.obs.Telemetry`
attached, then shows every observability surface the stack exposes:

1. the Prometheus text exposition of everything the drain recorded
   (submit/drain counters, wave sizes, LLM latency histograms, retrieval
   timings),
2. the tracing span tree the same drain produced (drain → waves → LLM calls),
3. an ``EXPLAIN ANALYZE`` of a query against the in-memory SQL engine —
   per-operator wall time and rows in/out, plus cache-counter deltas,
4. the engine's slow-query log.

Run with:  python examples/observability_demo.py
"""

from __future__ import annotations

import json

from repro.core import AnnotationService, TaskConfig
from repro.engine import Database
from repro.obs import Telemetry
from repro.workloads import build_benchmark


def run_instrumented_drain(telemetry: Telemetry) -> None:
    service = AnnotationService(max_concurrency=2, telemetry=telemetry)
    for name in ("Spider", "Bird"):
        workload = build_benchmark(name, seed=11, row_scale=0.001, query_count=6)
        service.register_project(
            name, workload.schema, config=TaskConfig(batch_size=3)
        )
        service.submit_many(workload.query_sql, project=name)
    completed = service.drain()
    ok = sum(1 for item in completed if not item.failed)
    print(f"drained {len(completed)} jobs across 2 tenants ({ok} annotated)")


def show_span_tree(telemetry: Telemetry) -> None:
    spans = telemetry.tracer.finished_spans()
    print(f"\n=== span tree ({len(spans)} spans) ===")
    by_id = {span.span_id: span for span in spans}

    def depth(span) -> int:
        steps, parent = 0, span.parent_id
        while parent is not None and parent in by_id:
            steps, parent = steps + 1, by_id[parent].parent_id
        return steps

    for span in spans:
        indent = "  " * depth(span)
        attrs = ", ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
        print(
            f"{indent}{span.name}  [{span.duration_seconds * 1000:0.2f}ms]"
            + (f"  ({attrs})" if attrs else "")
        )


def show_explain_analyze() -> None:
    database = Database("demo")
    database.execute(
        "CREATE TABLE events (id INT PRIMARY KEY, kind TEXT, amount REAL)"
    )
    database.execute(
        "INSERT INTO events (id, kind, amount) VALUES "
        + ", ".join(
            f"({i}, '{'click' if i % 3 else 'purchase'}', {i * 1.5})"
            for i in range(300)
        )
    )
    database.set_slow_query_log(0.0)  # log everything for the demo

    sql = (
        "SELECT kind, COUNT(*) AS n, AVG(amount) AS avg_amount FROM events "
        "WHERE amount > 30 GROUP BY kind ORDER BY n DESC"
    )
    info = database.explain(sql, analyze=True)
    analyze = info["analyze"]
    print("\n=== EXPLAIN ANALYZE ===")
    print(sql)
    print(
        f"mode={analyze['executor_mode']}  rows={analyze['rows_returned']}  "
        f"total={analyze['total_seconds'] * 1000:0.3f}ms"
    )
    for operator in analyze["operators"]:
        indent = "  " * operator["depth"]
        detail = {
            key: value
            for key, value in operator.items()
            if key not in ("op", "seconds", "rows_in", "rows_out", "depth")
        }
        extra = f"  {detail}" if detail else ""
        print(
            f"  {indent}{operator['op']:<14} {operator['rows_in']:>5} -> "
            f"{operator['rows_out']:<5} rows  "
            f"{operator['seconds'] * 1000:0.3f}ms{extra}"
        )
    print(f"plan cache:   {analyze['plan_cache']}")
    print(f"expressions:  {analyze['expressions']}")

    # Regular executes are timed once a threshold is set (0.0 = log all).
    database.execute(sql)
    database.execute("SELECT COUNT(*) FROM events WHERE kind = 'purchase'")

    print("\n=== slow-query log ===")
    for entry in database.slow_queries:
        print(f"  {entry['seconds'] * 1000:8.3f}ms  {entry['rows']:>4} rows  {entry['sql']}")


def main() -> None:
    telemetry = Telemetry()
    run_instrumented_drain(telemetry)

    print("\n=== Prometheus exposition ===")
    print(telemetry.render_prometheus(), end="")

    show_span_tree(telemetry)
    show_explain_analyze()

    # The same snapshot is available as JSON for dashboards/tests.
    families = telemetry.metrics_dict()
    print(f"\nmetrics_dict(): {len(families)} families, e.g. llm_requests_total = ")
    print(json.dumps(families["llm_requests_total"], indent=2))


if __name__ == "__main__":
    main()
