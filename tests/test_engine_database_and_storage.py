"""Tests for the database facade, storage layer, types and functions."""

import pytest

from repro.engine import (
    Database,
    DataType,
    StoredColumn,
    StoredTable,
    call_aggregate,
    call_scalar,
    coerce_value,
    compare_values,
    is_scalar_function,
    values_equal,
)
from repro.errors import CatalogError, ExecutionError, TypeMismatchError


class TestDatabaseCatalog:
    def test_create_table_programmatically(self):
        database = Database()
        database.create_table("t", [("id", "INT"), ("name", "VARCHAR(20)")], primary_key=["id"])
        assert database.has_table("t")
        assert database.table("T").columns[0].primary_key is True

    def test_duplicate_table_raises(self):
        database = Database()
        database.create_table("t", [("id", "INT")])
        with pytest.raises(CatalogError):
            database.create_table("T", [("id", "INT")])

    def test_create_table_if_not_exists_is_noop(self):
        database = Database()
        database.execute("CREATE TABLE t (id INT)")
        database.execute("CREATE TABLE IF NOT EXISTS t (id INT)")
        assert database.table_names == ["t"]

    def test_drop_table(self):
        database = Database()
        database.create_table("t", [("id", "INT")])
        database.drop_table("t")
        assert not database.has_table("t")
        with pytest.raises(CatalogError):
            database.drop_table("t")

    def test_unknown_table_lookup_raises(self):
        with pytest.raises(CatalogError):
            Database().table("missing")

    def test_row_count_and_total_rows(self, hr_database):
        assert hr_database.row_count("employees") == 6
        assert hr_database.total_rows() == 9

    def test_execute_script(self):
        database = Database()
        results = database.execute_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); SELECT COUNT(*) FROM t"
        )
        assert results[-1].rows == [(2,)]

    def test_insert_programmatic_dict_rows(self):
        database = Database()
        database.create_table("t", [("a", "INT"), ("b", "TEXT")])
        database.insert("t", [{"a": 1, "b": "x"}, {"a": 2}])
        assert database.query("SELECT b FROM t WHERE a = 2") == [(None,)]

    def test_insert_unknown_column_raises(self):
        database = Database()
        database.create_table("t", [("a", "INT")])
        with pytest.raises(CatalogError):
            database.insert("t", [{"nope": 1}])

    def test_insert_values_must_be_literals(self):
        database = Database()
        database.execute("CREATE TABLE t (a INT)")
        with pytest.raises(ExecutionError):
            database.execute("INSERT INTO t VALUES (a + 1)")

    def test_insert_negative_literal(self):
        database = Database()
        database.execute("CREATE TABLE t (a INT)")
        database.execute("INSERT INTO t VALUES (-5)")
        assert database.query("SELECT a FROM t") == [(-5,)]

    def test_not_null_violation(self):
        database = Database()
        database.execute("CREATE TABLE t (a INT NOT NULL)")
        with pytest.raises(ExecutionError):
            database.execute("INSERT INTO t VALUES (NULL)")

    def test_column_count_mismatch_raises(self):
        database = Database()
        database.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(ExecutionError):
            database.execute("INSERT INTO t (a) VALUES (1, 2)")


class TestStoredTable:
    def test_requires_columns(self):
        with pytest.raises(CatalogError):
            StoredTable("t", [])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(CatalogError):
            StoredTable("t", [StoredColumn("a", DataType.INTEGER), StoredColumn("A", DataType.TEXT)])

    def test_column_position_case_insensitive(self):
        table = StoredTable("t", [StoredColumn("Alpha", DataType.INTEGER)])
        assert table.column_position("alpha") == 0
        with pytest.raises(CatalogError):
            table.column_position("beta")

    def test_positional_insert_length_checked(self):
        table = StoredTable("t", [StoredColumn("a", DataType.INTEGER)])
        with pytest.raises(ExecutionError):
            table.insert_row((1, 2))

    def test_column_values(self):
        table = StoredTable("t", [StoredColumn("a", DataType.INTEGER)])
        table.insert_rows([(1,), (2,), (None,)])
        assert table.column_values("a") == [1, 2, None]

    def test_to_relation_uses_alias(self):
        table = StoredTable("t", [StoredColumn("a", DataType.INTEGER)])
        relation = table.to_relation(alias="x")
        assert relation.labels[0].relation == "x"


class TestValueModel:
    def test_data_type_from_sql_aliases(self):
        assert DataType.from_sql("VARCHAR(255)") is DataType.TEXT
        assert DataType.from_sql("NUMBER") is DataType.REAL
        assert DataType.from_sql("bigint") is DataType.INTEGER
        assert DataType.from_sql("TIMESTAMP") is DataType.DATE
        assert DataType.from_sql("unknown_type") is DataType.TEXT

    def test_coerce_value(self):
        assert coerce_value("42", DataType.INTEGER) == 42
        assert coerce_value(1, DataType.BOOLEAN) is True
        assert coerce_value("yes", DataType.BOOLEAN) is True
        assert coerce_value("no", DataType.BOOLEAN) is False
        assert coerce_value(3, DataType.TEXT) == "3"
        assert coerce_value(None, DataType.INTEGER) is None

    def test_coerce_failure_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("not-a-number", DataType.INTEGER)

    def test_compare_values_orders_nulls_first(self):
        assert compare_values(None, 1) == -1
        assert compare_values(1, None) == 1
        assert compare_values(None, None) == 0

    def test_compare_values_numeric_vs_string(self):
        assert compare_values(2, 10) < 0
        assert compare_values("2", "10") > 0  # lexicographic for strings

    def test_values_equal_floats_and_ints(self):
        assert values_equal(2, 2.0)
        assert not values_equal(2, 3)
        assert values_equal(None, None)
        assert not values_equal(None, 0)


class TestFunctions:
    def test_scalar_function_registry(self):
        assert is_scalar_function("upper")
        assert not is_scalar_function("COUNT")

    def test_scalar_functions(self):
        assert call_scalar("UPPER", ["abc"]) == "ABC"
        assert call_scalar("LENGTH", ["abcd"]) == 4
        assert call_scalar("ROUND", [3.456, 1]) == 3.5
        assert call_scalar("COALESCE", [None, None, 7]) == 7
        assert call_scalar("SUBSTR", ["abcdef", 2, 3]) == "bcd"
        assert call_scalar("NULLIF", [5, 5]) is None
        assert call_scalar("IFNULL", [None, "x"]) == "x"
        assert call_scalar("ABS", [-4]) == 4
        assert call_scalar("CONCAT", ["a", None, "b"]) == "ab"

    def test_scalar_null_propagation(self):
        assert call_scalar("UPPER", [None]) is None
        assert call_scalar("LENGTH", [None]) is None

    def test_unknown_scalar_raises(self):
        with pytest.raises(ExecutionError):
            call_scalar("NO_SUCH_FN", [1])

    def test_aggregates(self):
        assert call_aggregate("COUNT", [1, None, 2], distinct=False, count_star=True) == 3
        assert call_aggregate("COUNT", [1, None, 2], distinct=False) == 2
        assert call_aggregate("COUNT", [1, 1, 2], distinct=True) == 2
        assert call_aggregate("SUM", [1, 2, 3], distinct=False) == 6
        assert call_aggregate("AVG", [2, 4], distinct=False) == 3
        assert call_aggregate("MIN", ["b", "a"], distinct=False) == "a"
        assert call_aggregate("MAX", [1, 5, None], distinct=False) == 5
        assert call_aggregate("MEDIAN", [1, 2, 9], distinct=False) == 2

    def test_aggregate_empty_inputs(self):
        assert call_aggregate("SUM", [], distinct=False) is None
        assert call_aggregate("AVG", [None, None], distinct=False) is None
        assert call_aggregate("COUNT", [], distinct=False) == 0

    def test_aggregate_type_error(self):
        with pytest.raises(ExecutionError):
            call_aggregate("SUM", ["text"], distinct=False)

    def test_unknown_aggregate_raises(self):
        with pytest.raises(ExecutionError):
            call_aggregate("WEIRD", [1], distinct=False)
