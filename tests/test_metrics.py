"""Tests for text, execution, rubric, complexity and annotation metrics."""

import pytest

from repro.metrics import (
    annotation_accuracy,
    bleu_score,
    build_table1,
    build_table2,
    compare_execution,
    exact_match,
    execute_safely,
    execution_accuracy,
    grade_backtranslation,
    judge_annotation,
    level_distribution,
    mean_coverage,
    mean_level,
    profile_query_set,
    relative_to_baseline,
    results_match,
    rouge_l,
    rouge_n,
    token_f1,
)
from repro.errors import MetricError
from repro.llm import describe_query
from repro.schema import profile_database


class TestTextMetrics:
    def test_exact_match_ignores_case_and_spacing(self):
        assert exact_match("How many  Students?", "how many students")
        assert not exact_match("How many students?", "How many teachers?")

    def test_bleu_identical_is_one(self):
        text = "count the number of students per term"
        assert bleu_score(text, text) == pytest.approx(1.0)

    def test_bleu_orders_similarity(self):
        reference = "count the number of students per term in the registry"
        close = "count the number of students per term"
        far = "completely different sentence about nothing"
        assert bleu_score(close, reference) > bleu_score(far, reference)

    def test_bleu_empty_is_zero(self):
        assert bleu_score("", "reference") == 0.0

    def test_rouge_n_and_l(self):
        reference = "the average salary per department"
        assert rouge_n(reference, reference).f1 == pytest.approx(1.0)
        assert rouge_l(reference, reference).f1 == pytest.approx(1.0)
        assert rouge_l("salary per department", reference).recall < 1.0
        assert rouge_n("xyz", reference, order=2).f1 == 0.0

    def test_token_f1(self):
        assert token_f1("a b c", "a b c") == pytest.approx(1.0)
        assert token_f1("a b", "c d") == 0.0


class TestExecutionMetrics:
    def test_match_ignores_row_order_without_order_by(self, hr_database):
        gold = "SELECT name FROM employees WHERE dept_id = 1"
        predicted = "SELECT name FROM employees WHERE dept_id = 1 ORDER BY name DESC"
        assert compare_execution(hr_database, gold, predicted).match

    def test_order_by_in_gold_enforces_order(self, hr_database):
        gold = "SELECT name FROM employees ORDER BY salary DESC LIMIT 2"
        predicted = "SELECT name FROM employees ORDER BY salary ASC LIMIT 2"
        assert not compare_execution(hr_database, gold, predicted).match

    def test_invalid_prediction_fails(self, hr_database):
        comparison = compare_execution(hr_database, "SELECT name FROM employees", "SELECT nope FROM employees")
        assert not comparison.match
        assert comparison.gold_executed and not comparison.predicted_executed

    def test_none_prediction_fails(self, hr_database):
        assert not compare_execution(hr_database, "SELECT 1", None).match

    def test_invalid_gold_reported(self, hr_database):
        comparison = compare_execution(hr_database, "SELECT nope FROM employees", "SELECT 1")
        assert not comparison.gold_executed

    def test_execute_safely_never_raises(self, hr_database):
        result, error = execute_safely(hr_database, "SELECT * FROM missing_table")
        assert result is None and error

    def test_float_tolerance(self, hr_database):
        gold = "SELECT AVG(salary) FROM employees"
        predicted = "SELECT SUM(salary) / COUNT(salary) FROM employees"
        assert compare_execution(hr_database, gold, predicted).match

    def test_execution_accuracy_fraction(self, hr_database):
        pairs = [
            ("SELECT COUNT(*) FROM employees", "SELECT COUNT(*) FROM employees"),
            ("SELECT COUNT(*) FROM employees", "SELECT COUNT(*) FROM departments"),
        ]
        assert execution_accuracy(hr_database, pairs) == 0.5
        assert execution_accuracy(hr_database, []) == 0.0

    def test_results_match_column_count(self, hr_database):
        gold = hr_database.execute("SELECT name, salary FROM employees")
        predicted = hr_database.execute("SELECT name FROM employees")
        assert not results_match(gold, predicted)


class TestRubric:
    def test_level_5_for_equivalent_query(self, hr_database):
        gold = "SELECT name FROM employees WHERE salary > 100000"
        predicted = "SELECT name FROM employees WHERE salary > 100000.0"
        assert grade_backtranslation(hr_database, gold, predicted).level == 5

    def test_level_1_for_missing_or_broken_sql(self, hr_database):
        assert grade_backtranslation(hr_database, "SELECT 1", None).level == 1
        assert grade_backtranslation(hr_database, "SELECT 1", "SELECT x FROM missing").level == 1

    def test_level_2_for_wrong_tables(self, hr_database):
        gold = "SELECT name FROM employees WHERE salary > 0"
        predicted = "SELECT dept_name FROM departments"
        assert grade_backtranslation(hr_database, gold, predicted).level == 2

    def test_level_3_for_wrong_aggregate(self, hr_database):
        gold = "SELECT dept_id, COUNT(*) FROM employees GROUP BY dept_id"
        predicted = "SELECT dept_id, MAX(salary) FROM employees GROUP BY dept_id"
        assert grade_backtranslation(hr_database, gold, predicted).level == 3

    def test_level_4_for_missing_order_or_limit(self, hr_database):
        gold = "SELECT name FROM employees ORDER BY salary DESC LIMIT 3"
        predicted = "SELECT name FROM employees ORDER BY salary DESC LIMIT 4"
        judgement = grade_backtranslation(hr_database, gold, predicted)
        assert judgement.level in (3, 4)
        assert judgement.level == 4 or judgement.reasons

    def test_distribution_and_mean(self, hr_database):
        judgements = [
            grade_backtranslation(hr_database, "SELECT name FROM employees", "SELECT name FROM employees"),
            grade_backtranslation(hr_database, "SELECT name FROM employees", None),
        ]
        distribution = level_distribution(judgements)
        assert distribution[5] == 1 and distribution[1] == 1
        assert mean_level(judgements) == 3.0
        assert mean_level([]) == 0.0


class TestComplexityAggregation:
    def test_profile_query_set(self):
        queries = ["SELECT a FROM t", "SELECT COUNT(*) FROM t GROUP BY b", "not valid sql ###"]
        profile = profile_query_set("demo", queries)
        assert profile.query_count == 2
        assert profile.parse_failures == 1
        assert profile.metric("aggregations") == 0.5

    def test_empty_query_set_raises(self):
        with pytest.raises(MetricError):
            profile_query_set("demo", [])

    def test_all_unparseable_raises(self):
        with pytest.raises(MetricError):
            profile_query_set("demo", ["garbage ###"])

    def test_relative_to_baseline_and_table1(self):
        baseline = {"keywords": 10.0, "tokens": 100.0, "tables": 4.0, "columns": 10.0,
                    "aggregations": 5.0, "nestings": 2.0}
        other = {"keywords": 5.0, "tokens": 50.0, "tables": 2.0, "columns": 5.0,
                 "aggregations": 2.5, "nestings": 1.0}
        relative = relative_to_baseline(baseline, other, tuple(baseline))
        assert all(value == -0.5 for value in relative.values())

    def test_build_table1_requires_baseline(self):
        with pytest.raises(MetricError):
            build_table1({}, "Beaver")

    def test_build_table2_from_databases(self, hr_database):
        profiles = {"A": profile_database(hr_database), "B": profile_database(hr_database)}
        rows = build_table2(profiles, "A")
        assert rows[0].name == "A"
        assert all(value == 0.0 for value in rows[1].relative.values())


class TestAnnotationMetrics:
    def test_complete_description_is_accurate(self):
        sql = "SELECT COUNT(*) FROM employees WHERE salary > 100000"
        assert judge_annotation(sql, describe_query(sql, fidelity=1.0)).accurate

    def test_vague_description_is_not_accurate(self):
        sql = "SELECT dept_id, COUNT(*) FROM employees WHERE salary > 100000 GROUP BY dept_id"
        judgement = judge_annotation(sql, "Some information about employees.")
        assert not judgement.accurate
        assert judgement.coverage < 0.5
        assert judgement.missing_kinds

    def test_accuracy_and_coverage_aggregates(self):
        sql = "SELECT name FROM employees WHERE salary > 10"
        good = describe_query(sql, fidelity=1.0)
        pairs = [(sql, good), (sql, "unrelated words entirely")]
        assert annotation_accuracy(pairs) == 0.5
        assert 0.0 < mean_coverage(pairs) < 1.0
        assert annotation_accuracy([]) == 0.0
