"""Planner, statistics, alias-resolution, and gold-cache persistence tests.

Covers the cost-based source planner end to end: EXPLAIN output (join
reordering, predicate pushdown, cardinality estimates), planned-mode
execution staying bit-identical to the other modes, plan-cache behaviour
(hits, staleness re-derivation, catalog invalidation), the incremental
:class:`~repro.engine.stats.StatsCatalog`, GROUP BY alias resolution, and
the persistent :class:`~repro.metrics.execution.GoldResultCache`.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.errors import ReproError
from repro.metrics.execution import GoldResultCache, compare_execution
from repro.workloads import build_benchmark, workload_fingerprint

MODES = ("interpreted", "compiled", "planned")


@pytest.fixture()
def shop_database() -> Database:
    """Three tables with skewed sizes so reordering is clearly profitable.

    Textual join order in the test queries goes biggest-first
    (line_items > orders > customers) so the planner has to reverse it.
    """
    database = Database("shop")
    database.execute(
        "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, tier TEXT)"
    )
    database.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, status TEXT)"
    )
    database.execute(
        "CREATE TABLE line_items (order_id INT, product TEXT, qty INT)"
    )
    database.execute(
        "INSERT INTO customers (id, name, tier) VALUES "
        + ", ".join(
            f"({i}, 'cust_{i}', '{'gold' if i == 0 else 'basic'}')" for i in range(5)
        )
    )
    database.execute(
        "INSERT INTO orders (id, customer_id, status) VALUES "
        + ", ".join(
            f"({i}, {i % 5}, '{'open' if i % 3 else 'closed'}')" for i in range(20)
        )
    )
    database.execute(
        "INSERT INTO line_items (order_id, product, qty) VALUES "
        + ", ".join(f"({i % 20}, 'prod_{i % 7}', {1 + i % 4})" for i in range(60))
    )
    return database


JOIN_SQL = (
    "SELECT c.name, o.id, l.product "
    "FROM line_items l JOIN orders o ON l.order_id = o.id "
    "JOIN customers c ON o.customer_id = c.id "
    "WHERE c.tier = 'gold'"
)


def run_modes(database: Database, sql: str) -> dict[str, object]:
    """Execute ``sql`` under every executor mode, capturing errors."""
    original = database.executor_mode
    outcomes: dict[str, object] = {}
    try:
        for mode in MODES:
            database.executor_mode = mode
            try:
                outcomes[mode] = database.execute(sql)
            except ReproError as exc:
                outcomes[mode] = exc
    finally:
        database.executor_mode = original
    return outcomes


def assert_identical(database: Database, sql: str) -> None:
    """All three modes must agree cell-for-cell (interpreted is reference)."""
    outcomes = run_modes(database, sql)
    reference = outcomes["interpreted"]
    assert not isinstance(reference, Exception), f"interpreted failed: {sql}"
    for mode in MODES:
        outcome = outcomes[mode]
        assert not isinstance(outcome, Exception), f"[{mode}] raised for: {sql}"
        assert outcome.columns == reference.columns, f"[{mode}] {sql}"
        assert outcome.rows == reference.rows, f"[{mode}] {sql}"


# ---------------------------------------------------------------------------
# EXPLAIN: reordering, pushdown, estimates, unplannable reasons
# ---------------------------------------------------------------------------


class TestExplain:
    def test_reorders_joins_smallest_first(self, shop_database):
        plan = shop_database.explain(JOIN_SQL)
        assert plan["planned"] is True
        assert plan["reordered"] is True
        # Textual order is l, o, c; the filtered customers scan is cheapest.
        assert plan["join_order"][0] == "c"
        assert plan["join_order"] != ["l", "o", "c"]

    def test_pushdown_lands_on_the_right_scan(self, shop_database):
        plan = shop_database.explain(JOIN_SQL)
        by_name = {leaf["name"]: leaf for leaf in plan["leaves"]}
        assert len(by_name["c"]["pushed_filters"]) == 1
        assert "tier" in by_name["c"]["pushed_filters"][0]
        assert by_name["l"]["pushed_filters"] == []
        # The pushed equality shrinks the customers estimate below base rows.
        assert by_name["c"]["estimated_rows"] < by_name["c"]["base_rows"]

    def test_estimates_and_steps_present(self, shop_database):
        plan = shop_database.explain(JOIN_SQL)
        assert plan["estimated_rows"] > 0
        assert len(plan["steps"]) == 2
        for step in plan["steps"]:
            assert step["keys"], "every join step should have a hash key"

    def test_single_table_is_not_planned(self, shop_database):
        plan = shop_database.explain("SELECT * FROM orders WHERE id > 3")
        assert plan["planned"] is False
        assert "single-relation" in plan["reason"]

    def test_outer_join_is_not_planned(self, shop_database):
        plan = shop_database.explain(
            "SELECT * FROM orders o LEFT JOIN customers c ON o.customer_id = c.id"
        )
        assert plan["planned"] is False
        assert "left" in plan["reason"].lower()

    def test_subquery_in_on_is_not_planned(self, shop_database):
        plan = shop_database.explain(
            "SELECT * FROM orders o JOIN customers c "
            "ON o.customer_id = (SELECT MIN(id) FROM customers)"
        )
        assert plan["planned"] is False
        assert "subquery" in plan["reason"]

    def test_unknown_table_is_not_planned(self, shop_database):
        plan = shop_database.explain(
            "SELECT * FROM orders o JOIN nowhere n ON o.id = n.id"
        )
        assert plan["planned"] is False

    def test_non_select_statements(self, shop_database):
        plan = shop_database.explain("INSERT INTO customers (id) VALUES (99)")
        assert plan["statement"] == "Insert"
        assert plan["planned"] is False
        # explain only parses — the INSERT must not have run.
        assert len(shop_database.table("customers")) == 5

    def test_explain_works_in_every_mode(self, shop_database):
        for mode in MODES:
            shop_database.executor_mode = mode
            plan = shop_database.explain(JOIN_SQL)
            assert plan["planned"] is True
            assert plan["executor_mode"] == mode


# ---------------------------------------------------------------------------
# planned execution: bit-identical results, graceful fallback
# ---------------------------------------------------------------------------


class TestPlannedExecution:
    @pytest.mark.parametrize(
        "sql",
        [
            JOIN_SQL,
            # No ORDER BY: row *order* must still match the unplanned paths.
            "SELECT l.product, o.status FROM line_items l "
            "JOIN orders o ON l.order_id = o.id WHERE o.status = 'closed'",
            "SELECT c.name, COUNT(*) AS n FROM line_items l "
            "JOIN orders o ON l.order_id = o.id "
            "JOIN customers c ON o.customer_id = c.id "
            "GROUP BY c.name ORDER BY n DESC, c.name",
            # Cross join plus WHERE equality (stays compare_values, no edge).
            "SELECT o.id, c.id FROM orders o, customers c "
            "WHERE o.customer_id = c.id AND c.tier = 'gold'",
        ],
    )
    def test_bit_identical_across_modes(self, shop_database, sql):
        assert_identical(shop_database, sql)

    def test_unplannable_queries_fall_back(self, shop_database):
        assert_identical(
            shop_database,
            "SELECT o.id, c.name FROM orders o "
            "LEFT JOIN customers c ON o.customer_id = c.id ORDER BY o.id",
        )


# ---------------------------------------------------------------------------
# plan cache: hits, staleness, catalog invalidation
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_repeated_query_hits_the_cache(self, shop_database):
        shop_database.executor_mode = "planned"
        planner = shop_database._executor.planner
        shop_database.execute(JOIN_SQL)
        assert planner.plans_built == 1
        shop_database.execute(JOIN_SQL)
        assert planner.plans_built == 1
        assert planner.cache_hits >= 1

    def test_unplannable_verdict_is_cached(self, shop_database):
        shop_database.executor_mode = "planned"
        planner = shop_database._executor.planner
        sql = "SELECT * FROM orders o LEFT JOIN customers c ON o.customer_id = c.id"
        shop_database.execute(sql)
        built = planner.plans_built
        shop_database.execute(sql)
        assert planner.plans_built == built

    def test_dml_below_threshold_keeps_the_plan(self, shop_database):
        shop_database.executor_mode = "planned"  # default threshold: 64
        planner = shop_database._executor.planner
        shop_database.execute(JOIN_SQL)
        shop_database.execute("INSERT INTO orders (id, customer_id, status) VALUES (90, 0, 'open')")
        shop_database.execute(JOIN_SQL)
        assert planner.plans_built == 1

    def test_dml_past_threshold_rederives_the_plan(self, shop_database):
        shop_database.plan_staleness_threshold = 1
        shop_database.executor_mode = "planned"
        planner = shop_database._executor.planner
        planner.staleness_threshold = 1
        shop_database.execute(JOIN_SQL)
        assert planner.plans_built == 1
        shop_database.execute("INSERT INTO orders (id, customer_id, status) VALUES (91, 0, 'open')")
        shop_database.execute(JOIN_SQL)
        assert planner.plans_built == 2

    def test_unplannable_verdict_never_goes_stale(self, shop_database):
        shop_database.executor_mode = "planned"
        planner = shop_database._executor.planner
        planner.staleness_threshold = 1
        sql = "SELECT * FROM orders o LEFT JOIN customers c ON o.customer_id = c.id"
        shop_database.execute(sql)
        built = planner.plans_built
        shop_database.execute("INSERT INTO orders (id, customer_id, status) VALUES (92, 0, 'open')")
        shop_database.execute(sql)
        assert planner.plans_built == built

    def test_staleness_threshold_flows_from_the_database(self):
        database = Database("tuned", plan_staleness_threshold=7)
        assert database._executor.planner.staleness_threshold == 7

    def test_catalog_change_invalidates(self, shop_database):
        shop_database.executor_mode = "planned"
        planner = shop_database._executor.planner
        shop_database.execute(JOIN_SQL)
        built = planner.plans_built
        shop_database.execute("CREATE TABLE unrelated (x INT)")
        shop_database.execute(JOIN_SQL)
        assert planner.plans_built > built


# ---------------------------------------------------------------------------
# statistics catalog: correctness and incrementality
# ---------------------------------------------------------------------------


class TestStatsCatalog:
    def test_profile_values(self, shop_database):
        stats = shop_database.stats.table_stats("customers")
        assert stats.row_count == 5
        assert stats.column("tier").distinct == 2  # gold + basic
        assert stats.column("id").distinct == 5
        assert stats.column("TIER") is stats.column("tier")  # case-insensitive

    def test_null_fraction(self):
        database = Database("nulls")
        database.execute("CREATE TABLE t (a INT, b TEXT)")
        database.execute(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (NULL, 'y'), (NULL, NULL), (4, 'x')"
        )
        stats = database.stats.table_stats("t")
        assert stats.column("a").null_fraction == 0.5
        assert stats.column("b").null_count == 1
        assert stats.column("b").distinct == 2

    def test_unchanged_tables_profile_once(self, shop_database):
        catalog = shop_database.stats
        shop_database.stats.table_stats("orders")
        shop_database.stats.table_stats("orders")
        assert catalog.profiles_computed == 1

    def test_insert_only_reprofiles_the_mutated_table(self, shop_database):
        catalog = shop_database.stats
        catalog.table_stats("orders")
        catalog.table_stats("customers")
        assert catalog.profiles_computed == 2
        shop_database.execute("INSERT INTO orders (id, customer_id, status) VALUES (50, 1, 'open')")
        assert catalog.table_stats("customers").row_count == 5
        assert catalog.profiles_computed == 2  # customers reused
        assert catalog.table_stats("orders").row_count == 21
        assert catalog.profiles_computed == 3  # orders re-profiled

    def test_delete_reprofiles(self, shop_database):
        catalog = shop_database.stats
        assert catalog.table_stats("orders").row_count == 20
        shop_database.execute("DELETE FROM orders WHERE id < 10")
        assert catalog.table_stats("orders").row_count == 10
        assert catalog.profiles_computed == 2

    def test_drop_and_recreate_resets_the_profile(self, shop_database):
        catalog = shop_database.stats
        assert catalog.table_stats("orders").row_count == 20
        shop_database.execute("DROP TABLE orders")
        shop_database.execute("CREATE TABLE orders (id INT, note TEXT)")
        shop_database.execute("INSERT INTO orders (id, note) VALUES (1, 'fresh')")
        stats = catalog.table_stats("orders")
        assert stats.row_count == 1
        assert stats.column("note") is not None
        assert stats.column("status") is None


# ---------------------------------------------------------------------------
# GROUP BY / ORDER BY alias resolution (identical in every mode)
# ---------------------------------------------------------------------------


class TestAliasResolution:
    def test_group_by_column_alias(self, hr_database):
        sql = "SELECT dept_id AS grp, COUNT(*) AS n FROM employees GROUP BY grp"
        assert_identical(hr_database, sql)
        rows = sorted(hr_database.execute(sql).rows, key=lambda row: (row[0] is None, row[0]))
        assert rows == [(1, 2), (2, 2), (3, 1), (None, 1)]

    def test_group_by_expression_alias(self, hr_database):
        sql = (
            "SELECT salary * 2 AS double_salary, COUNT(*) AS n "
            "FROM employees GROUP BY double_salary"
        )
        assert_identical(hr_database, sql)
        assert len(hr_database.execute(sql).rows) == 6

    def test_source_column_shadows_alias(self, hr_database):
        # The alias reuses a real column name: grouping must use the source
        # column (6 distinct salaries), not the aliased dept_id (4 groups).
        sql = "SELECT dept_id AS salary, COUNT(*) AS n FROM employees GROUP BY salary"
        assert_identical(hr_database, sql)
        assert len(hr_database.execute(sql).rows) == 6

    def test_aggregate_alias_in_group_by_still_errors(self, hr_database):
        outcomes = run_modes(
            hr_database, "SELECT COUNT(*) AS n FROM employees GROUP BY n"
        )
        reference = outcomes["interpreted"]
        assert isinstance(reference, ReproError)
        for mode in MODES:
            assert isinstance(outcomes[mode], ReproError)
            assert str(outcomes[mode]) == str(reference)

    def test_order_by_alias(self, hr_database):
        sql = "SELECT name, salary * 2 AS double_salary FROM employees ORDER BY double_salary"
        assert_identical(hr_database, sql)
        rows = hr_database.execute(sql).rows
        assert [row[0] for row in rows] == ["Frank", "Dan", "Carol", "Bob", "Alice", "Eve"]


# ---------------------------------------------------------------------------
# persistent gold-result cache
# ---------------------------------------------------------------------------


GOLD_QUERIES = [
    "SELECT name FROM employees WHERE salary > 90000 ORDER BY name",
    "SELECT dept_id, COUNT(*) FROM employees GROUP BY dept_id",
    "SELECT broken FROM employees",  # errors must round-trip too
]


class TestGoldCachePersistence:
    def populate(self, database, path, fingerprint):
        cache = GoldResultCache(database, persist_path=path, fingerprint=fingerprint)
        for sql in GOLD_QUERIES:
            compare_execution(database, sql, sql, gold_cache=cache)
        cache.save()
        return cache

    def test_save_and_reload_roundtrip(self, hr_database, tmp_path):
        path = tmp_path / "gold.json"
        first = self.populate(hr_database, path, "fp-hr")
        assert path.exists()

        reloaded = GoldResultCache(hr_database, persist_path=path, fingerprint="fp-hr")
        assert reloaded.loaded == len(first) == len(GOLD_QUERIES)
        entry = reloaded.get(GOLD_QUERIES[0])
        assert entry is not None
        assert entry.ordered is True
        assert entry.result.rows == [("Alice",), ("Bob",), ("Eve",)]
        assert all(isinstance(row, tuple) for row in entry.result.rows)
        failed = reloaded.get(GOLD_QUERIES[2])
        assert failed.result is None
        assert failed.error

    def test_reloaded_entries_skip_execution(self, hr_database, tmp_path):
        path = tmp_path / "gold.json"
        self.populate(hr_database, path, "fp-hr")
        reloaded = GoldResultCache(hr_database, persist_path=path, fingerprint="fp-hr")
        comparison = compare_execution(
            hr_database, GOLD_QUERIES[0], GOLD_QUERIES[0], gold_cache=reloaded
        )
        assert comparison.match
        assert reloaded.hits == 1
        assert reloaded.misses == 0

    def test_fingerprint_mismatch_starts_empty(self, hr_database, tmp_path):
        path = tmp_path / "gold.json"
        self.populate(hr_database, path, "fp-hr")
        stale = GoldResultCache(hr_database, persist_path=path, fingerprint="fp-other")
        assert stale.loaded == 0
        assert len(stale) == 0

    def test_data_version_mismatch_starts_empty(self, hr_database, tmp_path):
        path = tmp_path / "gold.json"
        self.populate(hr_database, path, "fp-hr")
        hr_database.execute(
            "INSERT INTO employees (emp_id, name, salary, dept_id, hire_date) "
            "VALUES (7, 'Grace', 99000, 1, '2023-01-01')"
        )
        stale = GoldResultCache(hr_database, persist_path=path, fingerprint="fp-hr")
        assert stale.loaded == 0

    def test_corrupt_file_is_ignored(self, hr_database, tmp_path):
        path = tmp_path / "gold.json"
        path.write_text("{not json", encoding="utf-8")
        cache = GoldResultCache(hr_database, persist_path=path, fingerprint="fp-hr")
        assert cache.loaded == 0

    def test_workload_fingerprint_is_deterministic(self, tiny_spider):
        rebuilt = build_benchmark("Spider", seed=11, row_scale=0.002, query_count=10)
        assert tiny_spider.fingerprint() == workload_fingerprint(tiny_spider)
        assert rebuilt.fingerprint() == tiny_spider.fingerprint()
        assert len(tiny_spider.fingerprint()) == 64
        # Deterministic builds land on the same data version, which is what
        # makes cross-process cache reuse possible at all.
        assert rebuilt.database.data_version == tiny_spider.database.data_version

    def test_cross_build_reuse(self, tiny_spider, tmp_path):
        path = tmp_path / "workload_gold.json"
        sqls = tiny_spider.query_sql[:3]
        cache = GoldResultCache(
            tiny_spider.database,
            persist_path=path,
            fingerprint=tiny_spider.fingerprint(),
        )
        for sql in sqls:
            compare_execution(tiny_spider.database, sql, sql, gold_cache=cache)
        cache.save()

        rebuilt = build_benchmark("Spider", seed=11, row_scale=0.002, query_count=10)
        fresh = GoldResultCache(
            rebuilt.database, persist_path=path, fingerprint=rebuilt.fingerprint()
        )
        assert fresh.loaded == len(sqls)
