"""Unit tests for the query executor over the in-memory engine."""

import pytest

from repro.errors import CatalogError, ExecutionError
from repro.engine import Database


class TestProjectionAndFilter:
    def test_select_all_rows(self, hr_database):
        assert len(hr_database.execute("SELECT * FROM employees").rows) == 6

    def test_select_column_subset(self, hr_database):
        result = hr_database.execute("SELECT name, salary FROM employees")
        assert result.columns == ["name", "salary"]
        assert len(result.rows[0]) == 2

    def test_where_filter(self, hr_database):
        rows = hr_database.query("SELECT name FROM employees WHERE salary > 100000")
        assert {row[0] for row in rows} == {"Alice", "Eve"}

    def test_where_string_equality_is_case_sensitive(self, hr_database):
        assert hr_database.query("SELECT * FROM employees WHERE name = 'alice'") == []
        assert len(hr_database.query("SELECT * FROM employees WHERE name = 'Alice'")) == 1

    def test_and_or_logic(self, hr_database):
        rows = hr_database.query(
            "SELECT name FROM employees WHERE salary > 100000 OR dept_id = 2"
        )
        assert {row[0] for row in rows} == {"Alice", "Eve", "Carol", "Dan"}

    def test_null_comparison_filters_out(self, hr_database):
        # dept_id = NULL never matches; Frank's NULL dept is excluded.
        rows = hr_database.query("SELECT name FROM employees WHERE dept_id = 1 OR dept_id <> 1")
        assert "Frank" not in {row[0] for row in rows}

    def test_is_null(self, hr_database):
        rows = hr_database.query("SELECT name FROM employees WHERE dept_id IS NULL")
        assert rows == [("Frank",)]

    def test_is_not_null(self, hr_database):
        assert len(hr_database.query("SELECT name FROM employees WHERE dept_id IS NOT NULL")) == 5

    def test_between(self, hr_database):
        rows = hr_database.query("SELECT name FROM employees WHERE salary BETWEEN 80000 AND 100000")
        assert {row[0] for row in rows} == {"Bob", "Carol"}

    def test_like_prefix(self, hr_database):
        rows = hr_database.query("SELECT dept_name FROM departments WHERE dept_name LIKE 'Eng%'")
        assert rows == [("Engineering",)]

    def test_like_contains(self, hr_database):
        rows = hr_database.query("SELECT dept_name FROM departments WHERE dept_name LIKE '%ar%'")
        assert {row[0] for row in rows} == {"Marketing", "Research"}

    def test_not_like(self, hr_database):
        rows = hr_database.query("SELECT dept_name FROM departments WHERE dept_name NOT LIKE 'Eng%'")
        assert len(rows) == 2

    def test_in_list(self, hr_database):
        rows = hr_database.query("SELECT name FROM employees WHERE dept_id IN (1, 3)")
        assert {row[0] for row in rows} == {"Alice", "Bob", "Eve"}

    def test_arithmetic_in_projection(self, hr_database):
        rows = hr_database.query("SELECT salary * 2 FROM employees WHERE name = 'Bob'")
        assert rows[0][0] == 190000

    def test_case_expression(self, hr_database):
        rows = hr_database.query(
            "SELECT name, CASE WHEN salary >= 100000 THEN 'high' ELSE 'low' END FROM employees "
            "WHERE name IN ('Alice', 'Dan') ORDER BY name"
        )
        assert rows == [("Alice", "high"), ("Dan", "low")]

    def test_division_by_zero_yields_null(self, hr_database):
        rows = hr_database.query("SELECT salary / 0 FROM employees WHERE name = 'Alice'")
        assert rows[0][0] is None

    def test_unknown_column_raises(self, hr_database):
        with pytest.raises(ExecutionError):
            hr_database.execute("SELECT nonexistent FROM employees")

    def test_unknown_table_raises(self, hr_database):
        with pytest.raises(CatalogError):
            hr_database.execute("SELECT * FROM nope")


class TestAggregation:
    def test_count_star(self, hr_database):
        assert hr_database.query("SELECT COUNT(*) FROM employees") == [(6,)]

    def test_count_column_skips_nulls(self, hr_database):
        assert hr_database.query("SELECT COUNT(dept_id) FROM employees") == [(5,)]

    def test_count_distinct(self, hr_database):
        assert hr_database.query("SELECT COUNT(DISTINCT dept_id) FROM employees") == [(3,)]

    def test_sum_avg_min_max(self, hr_database):
        row = hr_database.query(
            "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM employees"
        )[0]
        assert row[0] == 592000
        assert row[1] == pytest.approx(592000 / 6)
        assert row[2] == 67000
        assert row[3] == 150000

    def test_group_by(self, hr_database):
        rows = hr_database.query(
            "SELECT dept_id, COUNT(*) FROM employees WHERE dept_id IS NOT NULL "
            "GROUP BY dept_id ORDER BY dept_id"
        )
        assert rows == [(1, 2), (2, 2), (3, 1)]

    def test_group_by_with_join(self, hr_database):
        rows = hr_database.query(
            "SELECT d.dept_name, AVG(e.salary) FROM employees e "
            "JOIN departments d ON e.dept_id = d.dept_id "
            "GROUP BY d.dept_name ORDER BY d.dept_name"
        )
        assert rows[0] == ("Engineering", pytest.approx(107500))

    def test_having(self, hr_database):
        rows = hr_database.query(
            "SELECT dept_id, COUNT(*) FROM employees WHERE dept_id IS NOT NULL "
            "GROUP BY dept_id HAVING COUNT(*) >= 2 ORDER BY dept_id"
        )
        assert rows == [(1, 2), (2, 2)]

    def test_sum_of_empty_group_is_null(self, hr_database):
        assert hr_database.query(
            "SELECT SUM(salary) FROM employees WHERE salary > 99999999"
        ) == [(None,)]

    def test_count_of_no_rows_is_zero(self, hr_database):
        assert hr_database.query("SELECT COUNT(*) FROM employees WHERE salary > 10000000") == [(0,)]

    def test_aggregate_with_expression_argument(self, hr_database):
        rows = hr_database.query("SELECT SUM(salary / 1000) FROM employees")
        assert rows[0][0] == 592

    def test_group_concat(self, hr_database):
        rows = hr_database.query(
            "SELECT GROUP_CONCAT(name) FROM employees WHERE dept_id = 1"
        )
        assert rows[0][0] == "Alice,Bob"


class TestJoins:
    def test_inner_join(self, hr_database):
        rows = hr_database.query(
            "SELECT e.name, d.dept_name FROM employees e JOIN departments d ON e.dept_id = d.dept_id"
        )
        assert len(rows) == 5

    def test_left_join_keeps_unmatched(self, hr_database):
        rows = hr_database.query(
            "SELECT e.name, d.dept_name FROM employees e LEFT JOIN departments d "
            "ON e.dept_id = d.dept_id ORDER BY e.emp_id"
        )
        assert len(rows) == 6
        assert rows[-1] == ("Frank", None)

    def test_right_join(self, hr_database):
        rows = hr_database.query(
            "SELECT d.dept_name, e.name FROM employees e RIGHT JOIN departments d "
            "ON e.dept_id = d.dept_id"
        )
        # All departments appear; Research has one employee (Eve).
        assert len(rows) == 5

    def test_full_join(self, hr_database):
        rows = hr_database.query(
            "SELECT e.name, d.dept_name FROM employees e FULL JOIN departments d "
            "ON e.dept_id = d.dept_id"
        )
        names = {row[0] for row in rows}
        assert "Frank" in names  # unmatched left row survives

    def test_cross_join_row_count(self, hr_database):
        rows = hr_database.query("SELECT * FROM employees CROSS JOIN departments")
        assert len(rows) == 18

    def test_join_using(self, hr_database):
        rows = hr_database.query(
            "SELECT e.name, d.dept_name FROM employees e JOIN departments d USING (dept_id)"
        )
        assert len(rows) == 5

    def test_non_equi_join_condition(self, hr_database):
        rows = hr_database.query(
            "SELECT e.name FROM employees e JOIN departments d ON e.salary > d.budget"
        )
        assert rows == []


class TestSubqueriesAndCTEs:
    def test_scalar_subquery_filter(self, hr_database):
        rows = hr_database.query(
            "SELECT name FROM employees WHERE salary > (SELECT AVG(salary) FROM employees)"
        )
        assert {row[0] for row in rows} == {"Alice", "Eve"}

    def test_in_subquery(self, hr_database):
        rows = hr_database.query(
            "SELECT name FROM employees WHERE dept_id IN "
            "(SELECT dept_id FROM departments WHERE budget > 250000)"
        )
        assert {row[0] for row in rows} == {"Alice", "Bob", "Eve"}

    def test_correlated_exists(self, hr_database):
        rows = hr_database.query(
            "SELECT d.dept_name FROM departments d WHERE EXISTS "
            "(SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id AND e.salary > 100000)"
        )
        assert {row[0] for row in rows} == {"Engineering", "Research"}

    def test_not_exists(self, hr_database):
        rows = hr_database.query(
            "SELECT d.dept_name FROM departments d WHERE NOT EXISTS "
            "(SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id)"
        )
        assert rows == []

    def test_derived_table(self, hr_database):
        rows = hr_database.query(
            "SELECT sub.dept_id, sub.n FROM "
            "(SELECT dept_id, COUNT(*) AS n FROM employees GROUP BY dept_id) AS sub "
            "WHERE sub.n >= 2 AND sub.dept_id IS NOT NULL ORDER BY sub.dept_id"
        )
        assert rows == [(1, 2), (2, 2)]

    def test_cte(self, hr_database):
        rows = hr_database.query(
            "WITH rich AS (SELECT * FROM employees WHERE salary > 90000) "
            "SELECT COUNT(*) FROM rich"
        )
        assert rows == [(3,)]

    def test_cte_with_column_rename(self, hr_database):
        rows = hr_database.query(
            "WITH t (person, pay) AS (SELECT name, salary FROM employees) "
            "SELECT person FROM t WHERE pay > 140000"
        )
        assert rows == [("Eve",)]

    def test_scalar_subquery_in_select_list(self, hr_database):
        rows = hr_database.query(
            "SELECT name, (SELECT MAX(budget) FROM departments) FROM employees WHERE emp_id = 1"
        )
        assert rows == [("Alice", 500000)]


class TestOrderLimitDistinctSetOps:
    def test_order_by_desc(self, hr_database):
        rows = hr_database.query("SELECT name FROM employees ORDER BY salary DESC LIMIT 2")
        assert rows == [("Eve",), ("Alice",)]

    def test_order_by_alias(self, hr_database):
        rows = hr_database.query(
            "SELECT name, salary * 2 AS double_pay FROM employees ORDER BY double_pay ASC LIMIT 1"
        )
        assert rows == [("Frank", 134000)]

    def test_order_by_position(self, hr_database):
        rows = hr_database.query("SELECT name, salary FROM employees ORDER BY 2 DESC LIMIT 1")
        assert rows[0][0] == "Eve"

    def test_limit_offset(self, hr_database):
        rows = hr_database.query("SELECT name FROM employees ORDER BY emp_id LIMIT 2 OFFSET 2")
        assert rows == [("Carol",), ("Dan",)]

    def test_distinct(self, hr_database):
        rows = hr_database.query("SELECT DISTINCT dept_id FROM employees WHERE dept_id IS NOT NULL")
        assert len(rows) == 3

    def test_union_removes_duplicates(self, hr_database):
        rows = hr_database.query(
            "SELECT dept_id FROM employees WHERE dept_id = 1 UNION SELECT dept_id FROM employees WHERE dept_id = 1"
        )
        assert rows == [(1,)]

    def test_union_all_keeps_duplicates(self, hr_database):
        rows = hr_database.query(
            "SELECT dept_id FROM employees WHERE dept_id = 1 "
            "UNION ALL SELECT dept_id FROM employees WHERE dept_id = 1"
        )
        assert len(rows) == 4

    def test_intersect(self, hr_database):
        rows = hr_database.query(
            "SELECT dept_id FROM employees INTERSECT SELECT dept_id FROM departments"
        )
        assert {row[0] for row in rows} == {1, 2, 3}

    def test_except(self, hr_database):
        rows = hr_database.query(
            "SELECT dept_id FROM departments EXCEPT SELECT dept_id FROM employees WHERE dept_id IS NOT NULL"
        )
        assert rows == []

    def test_select_without_from(self, hr_database):
        assert hr_database.query("SELECT 1 + 2") == [(3,)]

    def test_scalar_functions(self, hr_database):
        rows = hr_database.query("SELECT UPPER(name), LENGTH(name) FROM employees WHERE emp_id = 1")
        assert rows == [("ALICE", 5)]

    def test_coalesce(self, hr_database):
        rows = hr_database.query(
            "SELECT COALESCE(dept_id, -1) FROM employees WHERE name = 'Frank'"
        )
        assert rows == [(-1,)]
