"""Durability tests: journal format, torn tails, replay parity, snapshots,
and the crash-point sweep (kill the service at every commit boundary and
mid-write, recover, and check the state is exactly the journaled prefix)."""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import pytest

from repro.core import (
    AnnotationService,
    EventJournal,
    Feedback,
    FeedbackAction,
    SnapshotManager,
    TaskConfig,
    annotations_at_offset,
    export_at_offset,
)
from repro.core.journal import (
    ANNOTATION_COMMITTED,
    DRAIN_STATS,
    JOB_SUBMITTED,
    PROJECT_REGISTERED,
    JournalRecovery,
)
from repro.errors import JournalError, SnapshotError
from repro.schema import ColumnSchema, DatabaseSchema, ForeignKey, TableSchema

from tests.faults import CrashingJournal, InjectedCrash, encode_record

QUERIES = [
    "SELECT name FROM employees",
    "SELECT e.name, d.dept_name FROM employees e JOIN departments d ON e.dept_id = d.dept_id",
    "SELECT dept_id, COUNT(*) FROM employees GROUP BY dept_id",
    "SELECT name FROM employees WHERE salary > 100000",
    "SELECT name FROM employees WHERE dept_id IN "
    "(SELECT dept_id FROM departments WHERE budget > 250000)",
]


def make_schema() -> DatabaseSchema:
    return DatabaseSchema(
        name="hr",
        tables=[
            TableSchema(
                name="employees",
                columns=[
                    ColumnSchema("emp_id", "INT", primary_key=True, nullable=False),
                    ColumnSchema("name", "TEXT"),
                    ColumnSchema("salary", "REAL"),
                    ColumnSchema("dept_id", "INT"),
                ],
                foreign_keys=[ForeignKey("dept_id", "departments", "dept_id")],
            ),
            TableSchema(
                name="departments",
                columns=[
                    ColumnSchema("dept_id", "INT", primary_key=True, nullable=False),
                    ColumnSchema("dept_name", "TEXT"),
                    ColumnSchema("budget", "REAL"),
                ],
            ),
        ],
    )


def semantic_state(service: AnnotationService) -> dict:
    """The state that must survive any crash/recover cycle bit-for-bit."""
    return service.capture_state(include_accounting=False)


def record_boundaries(buffer: bytes) -> list[tuple[int, int]]:
    """(start, end) byte ranges of every complete record in a journal image."""
    header = struct.Struct("<II")
    boundaries = []
    position = 0
    while position + header.size <= len(buffer):
        length, _ = header.unpack_from(buffer, position)
        end = position + header.size + length
        if end > len(buffer):
            break
        boundaries.append((position, end))
        position = end
    return boundaries


# ----------------------------------------------------------------------
# journal format
# ----------------------------------------------------------------------

class TestJournalFormat:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "journal.bin"
        with EventJournal(path) as journal:
            assert journal.append("alpha", {"x": 1}) == 0
            assert journal.append("beta", {"y": [1, 2, 3]}) == 1
            assert journal.record_count == 2
        events = EventJournal.read_events(path)
        assert [(e.offset, e.type, e.payload) for e in events] == [
            (0, "alpha", {"x": 1}),
            (1, "beta", {"y": [1, 2, 3]}),
        ]

    def test_reopen_continues_offsets(self, tmp_path):
        path = tmp_path / "journal.bin"
        with EventJournal(path) as journal:
            journal.append("alpha", {})
        with EventJournal(path) as journal:
            assert journal.record_count == 1
            assert journal.append("beta", {}) == 1
        assert len(EventJournal.read_events(path)) == 2

    def test_read_limit_is_offset_cut(self, tmp_path):
        path = tmp_path / "journal.bin"
        with EventJournal(path) as journal:
            for index in range(5):
                journal.append("tick", {"index": index})
        assert [e.payload["index"] for e in EventJournal.read_events(path, limit=3)] == [0, 1, 2]
        with pytest.raises(JournalError):
            EventJournal.read_events(path, limit=-1)

    def test_scan_missing_file_is_empty(self, tmp_path):
        recovery = EventJournal.scan(tmp_path / "absent.bin")
        assert recovery == JournalRecovery()
        assert not recovery.torn

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = EventJournal(tmp_path / "journal.bin")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError):
            journal.append("alpha", {})

    def test_unserialisable_payload_is_journal_error(self, tmp_path):
        with EventJournal(tmp_path / "journal.bin") as journal:
            with pytest.raises(JournalError):
                journal.append("alpha", {"bad": object()})

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            EventJournal(tmp_path / "journal.bin", fsync="sometimes")

    def test_valid_crc_but_garbage_json_is_torn(self, tmp_path):
        path = tmp_path / "journal.bin"
        with EventJournal(path) as journal:
            journal.append("alpha", {"x": 1})
        payload = b"certainly not json"
        frame = struct.pack("<II", len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
        with open(path, "ab") as handle:
            handle.write(frame + payload)
        recovery = EventJournal.scan(path)
        assert recovery.record_count == 1
        assert recovery.torn


# ----------------------------------------------------------------------
# torn-tail property tests
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def torn_image(tmp_path_factory) -> bytes:
    """Bytes of a real service journal whose *last* record is a commit.

    Layout: project_registered, job_submitted, annotation_committed,
    drain_stats, annotation_committed — so tearing the tail destroys a
    semantically meaningful record, not just accounting.
    """
    root = tmp_path_factory.mktemp("torn-image")
    service = AnnotationService.open_durable(root / "svc")
    service.register_project("hr", make_schema())
    service.submit(QUERIES[0], project="hr")
    service.drain()
    service.pipeline("hr").annotate(QUERIES[1])
    service.close()
    return (root / "svc" / "journal.bin").read_bytes()


class TestTornTail:
    def test_every_byte_truncation_keeps_the_full_record_prefix(self, torn_image, tmp_path):
        boundaries = record_boundaries(torn_image)
        assert len(boundaries) == 5
        path = tmp_path / "torn.bin"
        for cut in range(len(torn_image) + 1):
            path.write_bytes(torn_image[:cut])
            recovery = EventJournal.scan(path)
            expected = sum(1 for _, end in boundaries if end <= cut)
            assert recovery.record_count == expected, f"cut at byte {cut}"
            assert recovery.valid_bytes == (
                boundaries[expected - 1][1] if expected else 0
            )
            assert recovery.torn == (cut != recovery.valid_bytes)

    def test_recovery_at_every_byte_of_last_record_is_exact_prefix_state(
        self, torn_image, tmp_path
    ):
        boundaries = record_boundaries(torn_image)
        start_last, end_last = boundaries[-1]
        assert end_last == len(torn_image)

        def recovered_state(image: bytes, name: str) -> dict:
            directory = tmp_path / name
            directory.mkdir()
            (directory / "journal.bin").write_bytes(image)
            service = AnnotationService.recover(directory / "journal.bin")
            state = semantic_state(service)
            service.close()
            return state

        full_state = recovered_state(torn_image, "full")
        prefix_state = recovered_state(torn_image[:start_last], "prefix")
        assert full_state != prefix_state  # the last record must matter

        for cut in range(start_last, end_last):
            directory = tmp_path / f"cut-{cut}"
            directory.mkdir()
            path = directory / "journal.bin"
            path.write_bytes(torn_image[:cut])
            service = AnnotationService.recover(path)
            assert service.journal.recovery.torn == (cut != start_last)
            assert semantic_state(service) == prefix_state, f"cut at byte {cut}"
            service.close()
            # the torn tail was truncated away on open
            assert len(path.read_bytes()) == start_last

    def test_bit_flip_in_last_record_drops_only_that_record(self, torn_image, tmp_path):
        boundaries = record_boundaries(torn_image)
        start_last, end_last = boundaries[-1]
        path = tmp_path / "flipped.bin"
        for position in range(start_last, end_last):
            corrupted = bytearray(torn_image)
            corrupted[position] ^= 0x40
            path.write_bytes(bytes(corrupted))
            recovery = EventJournal.scan(path)
            assert recovery.record_count == len(boundaries) - 1, f"flip at byte {position}"
            assert recovery.torn

    def test_healed_journal_accepts_new_appends(self, torn_image, tmp_path):
        boundaries = record_boundaries(torn_image)
        path = tmp_path / "journal.bin"
        path.write_bytes(torn_image[:-3])  # tear the tail
        with EventJournal(path) as journal:
            assert journal.recovery.torn
            assert journal.record_count == len(boundaries) - 1
            journal.append("epilogue", {"healed": True})
        events = EventJournal.read_events(path)
        assert events[-1].type == "epilogue"
        assert len(events) == len(boundaries)


class TestInteriorCorruption:
    """Byte flips in *interior* records: the committed prefix must survive
    and salvage must resynchronise on the records beyond the damage."""

    @staticmethod
    def flip_positions(start: int, end: int) -> list[int]:
        """Every header byte plus a payload sample — bounded but thorough."""
        header_size = struct.Struct("<II").size
        positions = list(range(start, min(start + header_size, end)))
        body = range(start + header_size, end)
        stride = max(1, len(body) // 16)
        positions.extend(body[::stride])
        return positions

    def test_flip_sweep_salvages_prefix_and_resyncs(self, torn_image, tmp_path):
        boundaries = record_boundaries(torn_image)
        path = tmp_path / "flipped.bin"
        for record_index in range(len(boundaries) - 1):  # interior records only
            start, end = boundaries[record_index]
            for position in self.flip_positions(start, end):
                corrupted = bytearray(torn_image)
                corrupted[position] ^= 0x40
                path.write_bytes(bytes(corrupted))
                recovery = EventJournal.scan(path)
                where = f"record {record_index}, flip at byte {position}"
                # The valid prefix is exactly the records before the damage.
                assert recovery.record_count == record_index, where
                assert recovery.torn, where
                salvage = recovery.salvage
                assert salvage is not None, where
                assert salvage.valid_records == record_index, where
                assert salvage.valid_bytes == start, where
                assert salvage.corrupt_at_byte == start, where
                assert salvage.dropped_bytes == len(torn_image) - start, where
                assert salvage.reason in {
                    "crc_mismatch",
                    "torn_record",
                    "implausible_length",
                }, where
                # Scan-forward resync must find every record past the damage.
                assert salvage.resync_offset == boundaries[record_index + 1][0], where
                assert salvage.resynced_records == len(boundaries) - record_index - 1, where
                assert salvage.kind == "mid_stream_corruption", where

    def test_recovery_from_interior_flip_is_exact_prefix_state(
        self, torn_image, tmp_path
    ):
        boundaries = record_boundaries(torn_image)

        def recovered_state(image: bytes, name: str) -> dict:
            directory = tmp_path / name
            directory.mkdir()
            path = directory / "journal.bin"
            path.write_bytes(image)
            service = AnnotationService.recover(path)
            state = semantic_state(service)
            service.close()
            return state

        for record_index in range(len(boundaries) - 1):
            start, end = boundaries[record_index]
            corrupted = bytearray(torn_image)
            corrupted[(start + end) // 2] ^= 0x01
            flipped_state = recovered_state(
                bytes(corrupted), f"flipped-{record_index}"
            )
            prefix_state = recovered_state(
                torn_image[:start], f"prefix-{record_index}"
            )
            assert flipped_state == prefix_state, f"record {record_index}"

    def test_resynced_records_are_diagnostic_only(self, torn_image, tmp_path):
        """Salvage never resurrects post-damage records: open() truncates to
        the valid prefix and the journal accepts fresh appends there."""
        boundaries = record_boundaries(torn_image)
        start, _ = boundaries[2]
        corrupted = bytearray(torn_image)
        corrupted[start + 4] ^= 0x40  # hit the CRC field of record 2
        path = tmp_path / "journal.bin"
        path.write_bytes(bytes(corrupted))
        with EventJournal(path) as journal:
            assert journal.record_count == 2
            salvage = journal.recovery.salvage
            assert salvage is not None and salvage.resynced_records == 2
            journal.append("epilogue", {"healed": True})
        events = EventJournal.read_events(path)
        assert [event.type for event in events[2:]] == ["epilogue"]


# ----------------------------------------------------------------------
# replay parity
# ----------------------------------------------------------------------

class TestReplayParity:
    def test_cold_replay_matches_live_state(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc")
        service.register_project("hr", make_schema())
        service.submit_many(QUERIES, project="hr")
        service.drain()
        service.submit(QUERIES[0], project="hr")  # leave one job pending
        live = semantic_state(service)
        assert live["queue"]  # the pending job must survive recovery
        service.close()

        recovered = AnnotationService.open_durable(tmp_path / "svc")
        assert semantic_state(recovered) == live
        recovered.close()

    def test_multi_project_and_feedback_history_replay(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc")
        service.register_project("hr", make_schema())
        service.register_project(
            "hr-fast",
            make_schema(),
            config=TaskConfig(model_name="gpt-3.5-turbo", num_candidates=2),
        )
        service.submit_many(QUERIES[:3], project="hr")
        service.submit_many(QUERIES[2:], project="hr-fast")
        service.drain()

        # Interactive feedback straight on a project pipeline: a regeneration
        # round (journaled as feedback_applied), an edit, and a discard.
        pipeline = service.pipeline("hr")
        candidates = pipeline.generate_candidates(QUERIES[3])
        assert (
            pipeline.submit_feedback(
                candidates,
                Feedback(
                    action=FeedbackAction.REGENERATE,
                    new_priorities=["mention the salary threshold"],
                    knowledge=[("dept", "short for department")],
                ),
            )
            is None
        )
        candidates = pipeline.generate_candidates(QUERIES[3])
        edited = pipeline.submit_feedback(
            candidates,
            Feedback(action=FeedbackAction.EDIT, edited_text="High earners by name."),
        )
        assert edited is not None and edited.accepted
        discarded = pipeline.submit_feedback(
            pipeline.generate_candidates(QUERIES[0]),
            Feedback(action=FeedbackAction.DISCARD),
        )
        assert discarded is not None and not discarded.accepted

        live = semantic_state(service)
        service.close()

        recovered = AnnotationService.open_durable(tmp_path / "svc")
        assert semantic_state(recovered) == live
        loop = recovered.pipeline("hr").feedback_loop
        assert loop.priorities == ["mention the salary threshold"]
        assert loop.knowledge.lookup("dept") is not None
        recovered.close()

    def test_recovered_service_keeps_working(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc")
        service.register_project("hr", make_schema())
        service.submit_many(QUERIES[:2], project="hr")
        service.drain()
        service.close()

        recovered = AnnotationService.open_durable(tmp_path / "svc")
        recovered.submit_many(QUERIES[2:], project="hr")
        completed = recovered.drain()
        assert len(completed) == 3
        assert recovered.stats.completed == 5
        live = semantic_state(recovered)
        recovered.close()

        # ... and the continued journal still replays to the same place.
        third = AnnotationService.open_durable(tmp_path / "svc")
        assert semantic_state(third) == live
        assert third.stats.completed == 5  # drain_stats + commits replayed
        third.close()

    def test_export_at_offset_reproduces_history(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc")
        service.register_project("hr", make_schema())
        service.submit_many(QUERIES, project="hr")
        service.drain()
        live_records = list(service.pipeline("hr").annotations)
        service.close()

        journal_path = tmp_path / "svc" / "journal.bin"
        events = EventJournal.read_events(journal_path)
        commit_offsets = [
            event.offset for event in events if event.type == ANNOTATION_COMMITTED
        ]
        assert len(commit_offsets) == len(QUERIES)

        # Full-journal export equals the live record set.
        assert annotations_at_offset(journal_path) == live_records
        # At the offset just after the k-th commit, exactly k records exist.
        for index, offset in enumerate(commit_offsets, start=1):
            records = annotations_at_offset(journal_path, offset=offset + 1)
            assert records == live_records[:index]

        first = export_at_offset(journal_path, tmp_path / "a.json", offset=commit_offsets[2] + 1)
        second = export_at_offset(journal_path, tmp_path / "b.json", offset=commit_offsets[2] + 1)
        assert first.read_bytes() == second.read_bytes()
        assert len(json.loads(first.read_text())) == 3


# ----------------------------------------------------------------------
# snapshots and warm start
# ----------------------------------------------------------------------

class TestSnapshots:
    def test_manager_round_trip_prune_and_corrupt_skip(self, tmp_path):
        manager = SnapshotManager(tmp_path / "snaps", keep=2)
        for offset in (5, 9, 12):
            manager.save(offset, {"offset": offset, "data": [offset]})
        assert manager.offsets() == [9, 12]  # keep=2 pruned offset 5
        assert manager.load(12)["data"] == [12]

        # Corrupt the newest snapshot: latest() must fall back to the older one.
        manager.path_for(12).write_text("{corrupt", encoding="utf-8")
        offset, state = manager.latest()
        assert offset == 9 and state["data"] == [9]

        # max_offset caps which snapshots qualify.
        assert manager.latest(max_offset=8) is None
        with pytest.raises(SnapshotError):
            manager.load(12)
        with pytest.raises(SnapshotError):
            SnapshotManager(tmp_path / "other", keep=0)

    def test_warm_start_from_snapshot_matches_cold_replay(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc", snapshot_every=4)
        service.register_project("hr", make_schema())
        for sql in QUERIES:
            service.submit(sql, project="hr")
            service.drain()
        live = semantic_state(service)
        service.close()

        snapshots = SnapshotManager(tmp_path / "svc" / "snapshots")
        latest = snapshots.latest()
        assert latest is not None and latest[0] > 0

        # Warm start (snapshot + suffix replay).
        warm = AnnotationService.open_durable(tmp_path / "svc")
        assert semantic_state(warm) == live
        warm.close()

        # Cold replay of the same journal must land in the same state.
        cold = AnnotationService.recover(tmp_path / "svc" / "journal.bin")
        assert semantic_state(cold) == live
        cold.close()

    def test_corrupt_snapshot_degrades_to_older_or_cold(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc", snapshot_every=2)
        service.register_project("hr", make_schema())
        for sql in QUERIES:
            service.submit(sql, project="hr")
            service.drain()
        live = semantic_state(service)
        service.close()

        snapshots = SnapshotManager(tmp_path / "svc" / "snapshots")
        offsets = snapshots.offsets()
        assert len(offsets) >= 2
        for offset in offsets:  # damage every snapshot
            path = snapshots.path_for(offset)
            path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])

        recovered = AnnotationService.open_durable(tmp_path / "svc")
        assert semantic_state(recovered) == live
        recovered.close()

    def test_forced_snapshot_and_cadence(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc", snapshot_every=0)
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr")
        service.drain()
        assert SnapshotManager(tmp_path / "svc" / "snapshots").latest() is None
        path = service.snapshot()
        assert path is not None and path.exists()
        service.close()

        warm = AnnotationService.open_durable(tmp_path / "svc")
        assert warm.pipeline("hr").example_count == 1
        warm.close()


# ----------------------------------------------------------------------
# crash-point sweep
# ----------------------------------------------------------------------

def run_until_crash(
    directory: Path, crash_after: int | None, torn_bytes: int | None = None
) -> tuple[AnnotationService, bool]:
    """Drive the standard workload on a journal that dies at ``crash_after``."""
    journal = CrashingJournal(
        directory / "journal.bin", crash_after=crash_after, torn_bytes=torn_bytes
    )
    service = AnnotationService()
    service.attach_journal(journal)
    try:
        service.register_project("hr", make_schema())
        service.submit_many(QUERIES, project="hr")
        service.drain()
    except InjectedCrash:
        return service, True  # abandoned without close(), like a dead process
    return service, False


class TestCrashSweep:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory) -> dict:
        directory = tmp_path_factory.mktemp("reference")
        service, crashed = run_until_crash(directory, crash_after=None)
        assert not crashed
        state = semantic_state(service)
        appends = service.journal.record_count
        service.close()
        # register + submits + commits + drain stats
        assert appends == 1 + len(QUERIES) + len(QUERIES) + 1
        return {"state": state, "appends": appends}

    @pytest.mark.parametrize("torn_bytes", [None, 1, 7, 40])
    def test_crash_at_every_append_recovers_and_completes(
        self, reference, tmp_path, torn_bytes
    ):
        for crash_after in range(1, reference["appends"] + 1):
            directory = tmp_path / f"crash-{crash_after}-{torn_bytes}"
            directory.mkdir()
            _, crashed = run_until_crash(
                directory, crash_after=crash_after, torn_bytes=torn_bytes
            )
            assert crashed

            recovered = AnnotationService.recover(directory / "journal.bin")
            if torn_bytes is not None:
                assert recovered.journal.recovery.torn
            # Finish the interrupted run: re-register/submit whatever the
            # journal never saw, then drain the re-queued jobs.
            if "hr" not in recovered.project_names:
                recovered.register_project("hr", make_schema())
            journaled = {job.sql for job in recovered.pending_jobs()} | {
                record.sql for record in recovered.pipeline("hr").annotations
            }
            for sql in QUERIES:
                if sql not in journaled:
                    recovered.submit(sql, project="hr")
            recovered.drain()
            assert (
                semantic_state(recovered) == reference["state"]
            ), f"crash at append {crash_after} (torn_bytes={torn_bytes})"
            recovered.close()

    def test_recovery_is_deterministic_at_each_crash_point(self, reference, tmp_path):
        for crash_after in (2, len(QUERIES) + 3, reference["appends"]):
            directory = tmp_path / f"det-{crash_after}"
            directory.mkdir()
            run_until_crash(directory, crash_after=crash_after)
            first = AnnotationService.recover(directory / "journal.bin")
            state = semantic_state(first)
            first.close()
            second = AnnotationService.recover(directory / "journal.bin")
            assert semantic_state(second) == state
            second.close()
