"""Tests for the simulated-LLM subsystem: sql2nl, nl2sql, prompts, knowledge."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.llm import (
    KnowledgeBase,
    NLToSQLGenerator,
    Prompt,
    PromptBuilder,
    SimulatedLLM,
    describe_query,
    extract_facts,
    fact_coverage,
    get_profile,
    humanize,
    select_facts,
)
from repro.metrics import compare_execution
from repro.retrieval import ContextRetriever
from repro.sql import parse_select


class TestSql2Nl:
    def test_humanize(self):
        assert humanize("MOIRA_LIST_NAME") == "moira list name"
        assert humanize("camelCase") == "camel case"

    def test_facts_cover_all_clause_kinds(self):
        sql = (
            "SELECT dept_id, COUNT(*), AVG(salary) FROM employees "
            "WHERE salary > 100 AND name LIKE 'A%' GROUP BY dept_id "
            "HAVING COUNT(*) >= 2 ORDER BY dept_id DESC LIMIT 5"
        )
        kinds = {fact.kind for fact in extract_facts(parse_select(sql))}
        assert {"projection", "aggregate", "table", "filter", "group", "having",
                "order", "limit"} <= kinds

    def test_full_fidelity_description_mentions_key_content(self):
        nl = describe_query(
            "SELECT COUNT(*) FROM employees WHERE salary > 100000", fidelity=1.0
        )
        assert "number of rows" in nl
        assert "employees" in nl
        assert "100000" in nl

    def test_distinct_and_set_operation_facts(self):
        facts = extract_facts(parse_select("SELECT DISTINCT a FROM t UNION SELECT b FROM u"))
        kinds = {fact.kind for fact in facts}
        assert "distinct" in kinds and "set_operation" in kinds

    def test_trivial_cte_wrapper_is_unwrapped(self):
        nl = describe_query(
            "WITH summary AS (SELECT dept_id, COUNT(*) FROM employees GROUP BY dept_id) "
            "SELECT * FROM summary",
            fidelity=1.0,
        )
        assert "employees" in nl
        assert "summary" not in nl.lower() or "dept" in nl

    def test_low_fidelity_drops_content(self):
        sql = (
            "SELECT a, b, c, SUM(d) FROM t WHERE e = 1 AND f = 2 AND g = 3 "
            "GROUP BY a, b, c ORDER BY a LIMIT 7"
        )
        full = describe_query(sql, fidelity=1.0)
        partial = describe_query(sql, fidelity=0.3, seed="x")
        assert len(partial) < len(full)

    def test_descriptions_are_deterministic(self):
        sql = "SELECT a FROM t WHERE b = 1"
        assert describe_query(sql, fidelity=0.7, seed=1) == describe_query(sql, fidelity=0.7, seed=1)

    def test_different_seeds_can_differ(self):
        sql = "SELECT a, b, c FROM t WHERE d = 1 AND e = 2 ORDER BY a LIMIT 3"
        variants = {describe_query(sql, fidelity=0.6, seed=i) for i in range(6)}
        assert len(variants) > 1

    def test_knowledge_adds_clarification(self):
        knowledge = KnowledgeBase()
        knowledge.add("MOIRA_LIST", "the mailing list system")
        nl = describe_query(
            "SELECT COUNT(*) FROM MOIRA_LIST", fidelity=1.0, knowledge=knowledge
        )
        assert "mailing list system" in nl

    def test_fact_coverage_bounds(self):
        facts = extract_facts(parse_select("SELECT a FROM t WHERE b = 1"))
        assert fact_coverage(facts, describe_query("SELECT a FROM t WHERE b = 1")) == pytest.approx(1.0)
        assert fact_coverage(facts, "something entirely unrelated") < 0.5

    @given(fidelity=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_select_facts_never_empty_and_monotone_bounds(self, fidelity):
        facts = extract_facts(parse_select(
            "SELECT a, SUM(b) FROM t WHERE c = 1 GROUP BY a ORDER BY a LIMIT 3"
        ))
        kept = select_facts(facts, fidelity, seed=3)
        assert 1 <= len(kept) <= len(facts)


class TestNl2Sql:
    def test_round_trip_simple_query(self, hr_schema, hr_database):
        sql = "SELECT name, salary FROM employees WHERE salary > 90000"
        nl = describe_query(sql, fidelity=1.0)
        predicted = NLToSQLGenerator(hr_schema).generate(nl).sql
        assert compare_execution(hr_database, sql, predicted).match

    def test_round_trip_group_by_join(self, hr_schema, hr_database):
        sql = (
            "SELECT departments.dept_name, COUNT(*) FROM employees "
            "JOIN departments ON employees.dept_id = departments.dept_id "
            "GROUP BY departments.dept_name"
        )
        nl = describe_query(sql, fidelity=1.0)
        predicted = NLToSQLGenerator(hr_schema).generate(nl).sql
        assert compare_execution(hr_database, sql, predicted).match

    def test_round_trip_preserves_string_literal_case(self, hr_schema):
        nl = describe_query("SELECT emp_id FROM employees WHERE name = 'Alice'", fidelity=1.0)
        predicted = NLToSQLGenerator(hr_schema).generate(nl).sql
        assert "'Alice'" in predicted

    def test_no_table_mention_yields_no_sql(self):
        from repro.schema import DatabaseSchema

        generator = NLToSQLGenerator(DatabaseSchema(name="empty"))
        result = generator.generate("Find the average of something undefined.")
        assert result.sql is None
        assert not result.produced_sql

    def test_limit_and_order_are_reconstructed(self, hr_schema):
        sql = "SELECT name FROM employees ORDER BY salary DESC LIMIT 3"
        nl = describe_query(sql, fidelity=1.0)
        result = NLToSQLGenerator(hr_schema).generate(nl)
        assert result.select.limit == 3
        assert result.select.order_by and result.select.order_by[0].ascending is False

    def test_in_subquery_round_trip(self, hr_schema, hr_database):
        sql = (
            "SELECT name FROM employees WHERE dept_id IN "
            "(SELECT dept_id FROM departments WHERE budget >= 300000)"
        )
        nl = describe_query(sql, fidelity=1.0)
        predicted = NLToSQLGenerator(hr_schema).generate(nl).sql
        assert compare_execution(hr_database, sql, predicted).match

    def test_boolean_filter_round_trip(self):
        from repro.engine import Database
        from repro.schema import schema_from_database

        database = Database()
        database.execute("CREATE TABLE flags (id INT, active BOOLEAN)")
        database.execute("INSERT INTO flags VALUES (1, TRUE), (2, FALSE), (3, TRUE)")
        schema = schema_from_database(database)
        sql = "SELECT id FROM flags WHERE active = TRUE"
        predicted = NLToSQLGenerator(schema).generate(describe_query(sql, fidelity=1.0)).sql
        assert compare_execution(database, sql, predicted).match


class TestPromptsAndKnowledge:
    def test_prompt_render_contains_sections(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        retriever.record_annotation("SELECT COUNT(*) FROM employees", "How many employees?")
        context = retriever.retrieve("SELECT name FROM employees")
        knowledge = KnowledgeBase()
        knowledge.add("employees", "people employed by the organisation")
        prompt = PromptBuilder(num_candidates=4).build(
            "SELECT name FROM employees", context=context, knowledge=knowledge,
            priorities=["emphasise filtering logic"],
        )
        text = prompt.render()
        assert "Relevant schema" in text
        assert "Example 1" in text
        assert "Domain knowledge" in text
        assert "emphasise filtering logic" in text
        assert prompt.has_schema_context and prompt.has_examples and prompt.has_knowledge

    def test_vanilla_prompt_has_no_context(self):
        prompt = PromptBuilder().build("SELECT a FROM t", context=None)
        assert not prompt.has_schema_context
        assert not prompt.has_examples

    def test_backtranslation_prompt(self):
        prompt = PromptBuilder().build_backtranslation("Find everything.", schema_text="TABLE t (a INT)")
        assert prompt.task == "nl_to_sql"
        assert prompt.num_candidates == 1

    def test_knowledge_base_dedupes_terms(self):
        knowledge = KnowledgeBase()
        knowledge.add("J-term", "January term")
        knowledge.add("j-term", "the one-month January term")
        assert len(knowledge) == 1
        assert knowledge.lookup("J-TERM").explanation == "the one-month January term"

    def test_knowledge_relevance_and_coverage(self):
        knowledge = KnowledgeBase()
        knowledge.add("MOIRA_LIST", "mailing lists")
        assert knowledge.relevant_entries("SELECT * FROM MOIRA_LIST")
        assert knowledge.relevant_entries("SELECT * FROM PAYROLL") == []
        assert knowledge.coverage("SELECT * FROM MOIRA_LIST") > 0
        assert knowledge.coverage("SELECT * FROM PAYROLL") == 0

    def test_failure_patterns_rendered(self):
        knowledge = KnowledgeBase()
        knowledge.add_failure_pattern("ignores ordering", "always describe ORDER BY")
        assert "ignores ordering" in knowledge.render_for_prompt("SELECT 1")


class TestSimulatedLLM:
    def test_context_increases_fidelity(self, hr_schema):
        llm = SimulatedLLM("gpt-4o", schema=hr_schema)
        builder = PromptBuilder()
        retriever = ContextRetriever(hr_schema)
        sql = "SELECT name FROM employees WHERE salary > 100000"
        with_context = llm.effective_fidelity(builder.build(sql, context=retriever.retrieve(sql)))
        without_context = llm.effective_fidelity(builder.build(sql, context=None))
        assert with_context > without_context

    def test_complex_queries_have_lower_fidelity(self, hr_schema):
        llm = SimulatedLLM("gpt-4o", schema=hr_schema)
        builder = PromptBuilder()
        simple = llm.effective_fidelity(builder.build("SELECT name FROM employees"))
        complex_sql = (
            "SELECT d.dept_name, COUNT(*), AVG(e.salary) FROM employees e "
            "JOIN departments d ON e.dept_id = d.dept_id "
            "WHERE e.salary > (SELECT AVG(salary) FROM employees) "
            "GROUP BY d.dept_name HAVING COUNT(*) > 1 ORDER BY 2 DESC"
        )
        complex_fidelity = llm.effective_fidelity(builder.build(complex_sql))
        assert complex_fidelity < simple

    def test_model_profiles_ranked(self, hr_schema):
        builder = PromptBuilder()
        sql = "SELECT a FROM t"
        strong = SimulatedLLM("gpt-4o").effective_fidelity(builder.build(sql))
        weak = SimulatedLLM("gpt-3.5-turbo").effective_fidelity(builder.build(sql))
        assert strong > weak

    def test_generation_returns_requested_candidates(self, hr_schema):
        llm = SimulatedLLM("gpt-4o", schema=hr_schema)
        prompt = PromptBuilder(num_candidates=4).build("SELECT name FROM employees")
        result = llm.generate(prompt)
        assert 1 <= len(result.candidates) <= 4
        assert result.model_name == "gpt-4o"
        assert llm.call_count == 1

    def test_backtranslate_uses_schema(self, hr_schema):
        llm = SimulatedLLM("gpt-4o", schema=hr_schema)
        sql = llm.backtranslate("Find the name, from the employees table.")
        assert sql is not None and "employees" in sql

    def test_backtranslate_without_schema_returns_none(self):
        assert SimulatedLLM("gpt-4o").backtranslate("anything") is None

    def test_unknown_model_gets_generic_profile(self):
        assert get_profile("mystery-model").name == "mystery-model"
