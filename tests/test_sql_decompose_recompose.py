"""Tests for nested-query decomposition and recomposition (paper steps 3.5 / 5.5)."""

from repro.sql import decompose, parse_select, print_select, recompose

NESTED = (
    "SELECT d.dept_name, COUNT(*) FROM employees e "
    "JOIN departments d ON e.dept_id = d.dept_id "
    "WHERE e.salary > (SELECT AVG(salary) FROM employees) "
    "AND e.dept_id IN (SELECT dept_id FROM departments WHERE budget > 100) "
    "GROUP BY d.dept_name"
)


class TestDecompose:
    def test_flat_query_single_unit(self):
        result = decompose("SELECT a FROM t WHERE b = 1")
        assert not result.was_nested
        assert len(result.units) == 1
        assert result.outer_unit.role == "outer"

    def test_nested_query_produces_subquery_units(self):
        result = decompose(NESTED)
        assert result.was_nested
        assert len(result.subquery_units) >= 2
        roles = {unit.role for unit in result.subquery_units}
        assert roles <= {"cte", "derived_table", "where_subquery", "scalar_subquery"}

    def test_derived_table_lifted_into_cte(self):
        result = decompose("SELECT x.n FROM (SELECT COUNT(*) AS n FROM t) AS x")
        assert "WITH" in result.decomposed_sql
        assert any(unit.role == "derived_table" for unit in result.units)

    def test_decomposed_sql_still_parses(self):
        result = decompose(NESTED)
        reparsed = parse_select(result.decomposed_sql)
        assert print_select(reparsed)

    def test_existing_ctes_become_units(self):
        result = decompose(
            "WITH top AS (SELECT dept_id FROM departments) SELECT * FROM employees "
            "WHERE dept_id IN (SELECT dept_id FROM top)"
        )
        assert any(unit.role == "cte" and unit.name == "top" for unit in result.units)

    def test_unit_metadata(self):
        result = decompose(NESTED)
        outer = result.outer_unit
        assert "employees" in [t.lower() for t in outer.tables] or outer.tables
        assert outer.depends_on == [unit.name for unit in result.subquery_units]
        for unit in result.units:
            assert unit.sql
            assert parse_select(unit.sql)

    def test_accepts_parsed_ast(self):
        result = decompose(parse_select(NESTED))
        assert result.was_nested

    def test_original_sql_preserved(self):
        result = decompose(NESTED)
        assert result.original_sql == print_select(parse_select(NESTED))


class TestRecompose:
    def test_flat_query_returns_outer_description(self):
        decomposition = decompose("SELECT a FROM t")
        merged = recompose(decomposition, {decomposition.outer_unit.name: "List the a values."})
        assert merged.text == "List the a values."
        assert not merged.was_nested

    def test_nested_descriptions_are_merged(self):
        decomposition = decompose(NESTED)
        descriptions = {unit.name: f"compute block {index}" for index, unit in
                        enumerate(decomposition.subquery_units)}
        descriptions[decomposition.outer_unit.name] = "Report the department head counts"
        merged = recompose(decomposition, descriptions)
        assert merged.was_nested
        assert "Then," in merged.text
        assert "department head counts" in merged.text
        for index in range(len(decomposition.subquery_units)):
            assert f"compute block {index}" in merged.text

    def test_missing_outer_description_uses_fallback(self):
        decomposition = decompose("SELECT a FROM t")
        merged = recompose(decomposition, {})
        assert merged.text
        assert "t" in merged.text

    def test_missing_unit_descriptions_are_skipped(self):
        decomposition = decompose(NESTED)
        merged = recompose(
            decomposition, {decomposition.outer_unit.name: "Count per department."}
        )
        assert merged.text.startswith("Count per department") or "Count per department" in merged.text
