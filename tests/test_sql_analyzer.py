"""Unit tests for SQL static analysis (Table 1 complexity metrics inputs)."""

import pytest

from repro.sql import (
    analyze_query,
    count_joins,
    count_keywords,
    count_predicates,
    count_tokens,
    extract_aggregates,
    extract_columns,
    extract_literals,
    extract_tables,
    is_nested,
    nesting_depth,
    parse_select,
)

NESTED_QUERY = """
WITH DistinctLists AS (
  SELECT MOIRA_LIST_NAME, COUNT(DISTINCT MIT_ID) AS Member_Count
  FROM MOIRA_LIST WHERE MOIRA_LIST_NAME LIKE 'B%' GROUP BY MOIRA_LIST_NAME
)
SELECT COUNT(DISTINCT dl.MOIRA_LIST_NAME),
  (SELECT MAX(Member_Count) FROM DistinctLists)
FROM DistinctLists dl
"""


class TestExtraction:
    def test_extract_tables_simple(self):
        assert extract_tables(parse_select("SELECT a FROM t")) == ["t"]

    def test_extract_tables_join(self):
        tables = extract_tables(parse_select("SELECT * FROM a JOIN b ON a.id = b.id"))
        assert tables == ["a", "b"]

    def test_extract_tables_excludes_cte_names(self):
        tables = extract_tables(parse_select(NESTED_QUERY))
        assert tables == ["MOIRA_LIST"]

    def test_extract_tables_deduplicates(self):
        tables = extract_tables(
            parse_select("SELECT * FROM t WHERE a IN (SELECT a FROM t WHERE b = 1)")
        )
        assert tables == ["t"]

    def test_extract_columns(self):
        columns = extract_columns(parse_select("SELECT a, b FROM t WHERE c > 1 GROUP BY d"))
        assert set(columns) == {"a", "b", "c", "d"}

    def test_extract_columns_from_subqueries(self):
        columns = extract_columns(parse_select(NESTED_QUERY))
        assert "MOIRA_LIST_NAME" in columns
        assert "MIT_ID" in columns

    def test_extract_aggregates(self):
        aggregates = extract_aggregates(
            parse_select("SELECT COUNT(*), SUM(a), AVG(b) FROM t")
        )
        assert aggregates.count("COUNT") == 1
        assert "SUM" in aggregates and "AVG" in aggregates

    def test_extract_literals(self):
        literals = extract_literals(parse_select("SELECT a FROM t WHERE b = 'x' AND c > 10"))
        assert "x" in literals and 10 in literals

    def test_extract_literals_skips_null(self):
        assert extract_literals(parse_select("SELECT a FROM t WHERE b IS NULL")) == []


class TestCounts:
    def test_count_keywords(self):
        assert count_keywords("SELECT a FROM t WHERE b = 1") == 3

    def test_count_tokens(self):
        assert count_tokens("SELECT a FROM t") == 4

    def test_count_joins(self):
        assert count_joins(parse_select("SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")) == 2

    def test_count_predicates(self):
        sql = "SELECT a FROM t WHERE a > 1 AND b LIKE 'x%' AND c IN (1, 2) AND d IS NULL"
        assert count_predicates(parse_select(sql)) == 4

    def test_nesting_depth_flat_query(self):
        assert nesting_depth(parse_select("SELECT a FROM t")) == 0
        assert not is_nested(parse_select("SELECT a FROM t"))

    def test_nesting_depth_counts_all_blocks(self):
        select = parse_select(NESTED_QUERY)
        assert nesting_depth(select) >= 2
        assert is_nested(select)

    def test_nesting_counts_derived_tables(self):
        assert nesting_depth(parse_select("SELECT * FROM (SELECT a FROM t) AS x")) == 1

    def test_nesting_counts_set_operations(self):
        assert nesting_depth(parse_select("SELECT a FROM t UNION SELECT b FROM u")) == 1


class TestAnalyzeQuery:
    def test_profile_from_sql_text(self):
        profile = analyze_query("SELECT COUNT(*) FROM t WHERE a = 1 GROUP BY b")
        assert profile.complexity.aggregations == 1
        assert profile.complexity.tables == 1
        assert profile.complexity.has_group_by is True

    def test_profile_from_ast(self):
        profile = analyze_query(parse_select("SELECT a FROM t ORDER BY a"))
        assert profile.complexity.has_order_by is True

    def test_complexity_as_dict_keys(self):
        metrics = analyze_query("SELECT a FROM t").complexity.as_dict()
        for key in ("keywords", "tokens", "tables", "columns", "aggregations", "nestings"):
            assert key in metrics

    def test_nested_query_is_more_complex_than_flat(self):
        flat = analyze_query("SELECT a FROM t").complexity
        nested = analyze_query(NESTED_QUERY).complexity
        assert nested.tokens > flat.tokens
        assert nested.keywords > flat.keywords
        assert nested.nestings > flat.nestings
        assert nested.aggregations > flat.aggregations

    def test_set_operation_flag(self):
        profile = analyze_query("SELECT a FROM t UNION SELECT b FROM u")
        assert profile.complexity.has_set_operation is True

    def test_join_condition_columns_counted(self):
        profile = analyze_query("SELECT a.x FROM a JOIN b ON a.id = b.other_id")
        assert "id" in [c.lower() for c in profile.columns]
        assert "other_id" in [c.lower() for c in profile.columns]
