"""Tests for the batched annotation path: LLM batch API, wave scheduler,
batch/sequential parity, and the AnnotationService facade."""

import pytest

from repro.core import (
    AnnotationPipeline,
    AnnotationService,
    Feedback,
    FeedbackAction,
    TaskConfig,
)
from repro.errors import PipelineError
from repro.llm import GenerationResult, LLMClient, Prompt, PromptBuilder, SimulatedLLM
from repro.workloads import build_benchmark

QUERIES = [
    "SELECT name, salary FROM employees WHERE salary > 50000",
    "SELECT dept_name, budget FROM departments ORDER BY budget DESC",
    "SELECT e.name FROM employees e JOIN departments d ON e.dept_id = d.dept_id "
    "WHERE d.dept_name = 'Sales'",
    "SELECT name FROM employees WHERE dept_id IN "
    "(SELECT dept_id FROM departments WHERE budget > 100000)",
    "SELECT COUNT(*), dept_id FROM employees GROUP BY dept_id",
    "SELECT name FROM employees WHERE hire_date > '2020-01-01'",
    "SELECT AVG(salary) FROM employees",
    "SELECT dept_name FROM departments WHERE budget < 50000",
]


def record_key(record):
    return (record.query_id, record.nl, record.accepted, tuple(record.candidates))


class SequentialOnlyLLM(LLMClient):
    """Minimal client exercising the ABC's sequential generate_batch fallback."""

    name = "sequential-only"

    def __init__(self):
        self.calls = 0

    def generate(self, prompt: Prompt) -> GenerationResult:
        self.calls += 1
        return GenerationResult(
            candidates=[f"description of {prompt.sql}"], model_name=self.name
        )

    def backtranslate(self, description: str, schema_text: str = "") -> str | None:
        return None


class TestGenerateBatch:
    def test_default_fallback_matches_sequential(self):
        llm = SequentialOnlyLLM()
        prompts = [Prompt(sql=sql) for sql in QUERIES[:3]]
        results = llm.generate_batch(prompts)
        assert [result.candidates for result in results] == [
            llm.generate(prompt).candidates for prompt in prompts
        ]
        assert llm.usage.batches == 1

    def test_simulated_batch_matches_single_calls(self, hr_schema):
        builder = PromptBuilder(num_candidates=4)
        prompts = [builder.build(sql) for sql in QUERIES]
        single = SimulatedLLM("gpt-4o", schema=hr_schema)
        batched = SimulatedLLM("gpt-4o", schema=hr_schema)
        expected = [single.generate(prompt) for prompt in prompts]
        actual = batched.generate_batch(prompts)
        assert [result.candidates for result in actual] == [
            result.candidates for result in expected
        ]
        assert [result.prompt_tokens for result in actual] == [
            result.prompt_tokens for result in expected
        ]

    def test_simulated_batch_counts_one_round_trip(self):
        llm = SimulatedLLM("gpt-4o")
        prompts = [Prompt(sql=sql) for sql in QUERIES]
        llm.generate_batch(prompts)
        assert llm.usage.requests == 1
        assert llm.usage.batches == 1
        assert llm.usage.prompts == len(prompts)
        assert llm.usage.candidates > 0
        assert llm.usage.mean_batch_size == len(prompts)

    def test_single_generate_records_usage(self):
        llm = SimulatedLLM("gpt-4o")
        llm.generate(Prompt(sql=QUERIES[0]))
        assert llm.usage.requests == 1
        assert llm.usage.prompts == 1
        assert llm.usage.batches == 0

    def test_duplicate_prompts_share_generation(self):
        llm = SimulatedLLM("gpt-4o")
        prompt = Prompt(sql=QUERIES[0])
        first, second = llm.generate_batch([prompt, prompt])
        assert first.candidates == second.candidates
        assert first is not second  # results are independent copies

    def test_empty_batch(self):
        assert SimulatedLLM("gpt-4o").generate_batch([]) == []


class TestBatchSequentialParity:
    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_parity_on_hr_queries(self, hr_schema, batch_size):
        sequential = AnnotationPipeline(hr_schema, dataset_name="hr")
        expected = [sequential.annotate(sql) for sql in QUERIES]

        batched = AnnotationPipeline(
            hr_schema, config=TaskConfig(batch_size=batch_size), dataset_name="hr"
        )
        actual = batched.annotate_many(QUERIES)

        assert [record_key(r) for r in actual] == [record_key(r) for r in expected]
        # The growing-archive effect survives batching: both pipelines end
        # with identical example stores.
        assert batched.example_count == sequential.example_count

    def test_parity_on_generated_workload(self):
        workload = build_benchmark("Spider", seed=11, row_scale=0.0015, query_count=40)
        sqls = workload.query_sql
        sequential = AnnotationPipeline(workload.schema, dataset_name="Spider")
        expected = [sequential.annotate(sql) for sql in sqls]
        batched = AnnotationPipeline(
            workload.schema, config=TaskConfig(batch_size=10), dataset_name="Spider"
        )
        actual = batched.annotate_many(sqls)
        assert [record_key(r) for r in actual] == [record_key(r) for r in expected]

    def test_parity_without_rag(self, hr_schema):
        config = TaskConfig(rag_enabled=False, batch_size=4)
        sequential = AnnotationPipeline(hr_schema, config=TaskConfig(rag_enabled=False))
        expected = [sequential.annotate(sql) for sql in QUERIES]
        batched = AnnotationPipeline(hr_schema, config=config)
        actual = batched.annotate_many(QUERIES)
        assert [record_key(r) for r in actual] == [record_key(r) for r in expected]

    def test_parity_with_content_sensitive_validation(self, hr_schema):
        # Force the strict full-prompt validation path by marking the LLM as
        # sensitive to example content.
        sequential = AnnotationPipeline(hr_schema, dataset_name="hr")
        expected = [sequential.annotate(sql) for sql in QUERIES]

        llm = SimulatedLLM("gpt-4o", schema=hr_schema)
        llm.example_content_sensitive = True
        batched = AnnotationPipeline(
            hr_schema, config=TaskConfig(batch_size=4), llm=llm, dataset_name="hr"
        )
        actual = batched.annotate_many(QUERIES)
        assert [record_key(r) for r in actual] == [record_key(r) for r in expected]

    def test_batch_uses_fewer_llm_round_trips(self, hr_schema):
        batched = AnnotationPipeline(
            hr_schema, config=TaskConfig(batch_size=4), dataset_name="hr"
        )
        batched.annotate_many(QUERIES)
        stats = batched.last_run_stats
        assert stats.queries == len(QUERIES)
        assert stats.batched_queries + stats.regenerated_queries == len(QUERIES)
        assert stats.llm_requests < len(QUERIES) + 1
        assert stats.waves >= 2  # ramping wave sizes

    def test_query_ids_are_threaded(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        ids = [f"q-{index}" for index in range(len(QUERIES))]
        records = pipeline.annotate_many(QUERIES, query_ids=ids)
        assert [record.query_id for record in records] == ids

    def test_query_ids_must_align(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema)
        with pytest.raises(PipelineError):
            pipeline.annotate_many(QUERIES, query_ids=["only-one"])

    def test_empty_statement_raises(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema)
        with pytest.raises(PipelineError):
            pipeline.annotate_many(["   "])

    def test_invalid_batch_size_rejected(self, hr_schema):
        with pytest.raises(PipelineError):
            TaskConfig(batch_size=0).validate()
        pipeline = AnnotationPipeline(hr_schema)
        with pytest.raises(PipelineError):
            pipeline.annotate_many(QUERIES[:2], batch_size=0)


class TestAnnotationService:
    def test_register_submit_drain(self, hr_schema):
        service = AnnotationService()
        service.register_project("hr", hr_schema, config=TaskConfig(batch_size=4))
        job_ids = service.submit_many(QUERIES, project="hr")
        assert service.pending_count == len(QUERIES)
        assert len(job_ids) == len(set(job_ids)) == len(QUERIES)

        completed = service.drain()
        assert service.pending_count == 0
        assert [job.job.job_id for job in completed] == job_ids
        assert all(job.record.accepted for job in completed)
        assert service.stats.completed == len(QUERIES)
        assert service.stats.pending == 0

    def test_drain_matches_sequential_annotation(self, hr_schema):
        sequential = AnnotationPipeline(hr_schema, dataset_name="hr")
        expected = [sequential.annotate(sql) for sql in QUERIES]

        service = AnnotationService()
        service.register_project("hr", hr_schema, config=TaskConfig(batch_size=4))
        service.submit_many(QUERIES, project="hr")
        completed = service.drain()
        assert [record_key(job.record) for job in completed] == [
            record_key(record) for record in expected
        ]

    def test_partial_drain_preserves_order(self, hr_schema):
        service = AnnotationService()
        service.register_project("hr", hr_schema, config=TaskConfig(batch_size=4))
        service.submit_many(QUERIES, project="hr")
        first = service.drain(max_jobs=3)
        assert len(first) == 3
        assert service.pending_count == len(QUERIES) - 3
        rest = service.drain()
        sqls = [job.job.sql for job in first + rest]
        assert sqls == QUERIES

    def test_multi_project_drain(self, hr_schema):
        workload = build_benchmark("Bird", seed=3, row_scale=0.0015, query_count=5)
        service = AnnotationService()
        service.register_project("hr", hr_schema, config=TaskConfig(batch_size=4))
        service.register_project("bird", workload.schema, config=TaskConfig(batch_size=4))
        service.submit(QUERIES[0], project="hr")
        service.submit_many(workload.query_sql, project="bird")
        service.submit(QUERIES[1], project="hr")
        completed = service.drain()
        assert len(completed) == len(workload.query_sql) + 2
        assert {job.job.project for job in completed} == {"hr", "bird"}
        assert "gpt-4o" in service.stats.usage_by_model
        assert service.stats.usage_by_model["gpt-4o"].prompts >= len(completed)

    def test_submit_with_explicit_query_id(self, hr_schema):
        service = AnnotationService()
        service.register_project("hr", hr_schema)
        service.submit(QUERIES[0], project="hr", query_id="custom-1")
        completed = service.drain()
        assert completed[0].record.query_id == "custom-1"

    def test_errors(self, hr_schema):
        service = AnnotationService()
        with pytest.raises(PipelineError):
            service.submit(QUERIES[0])  # no project registered
        service.register_project("hr", hr_schema)
        with pytest.raises(PipelineError):
            service.register_project("hr", hr_schema)  # duplicate
        with pytest.raises(PipelineError):
            service.submit("  ;", project="hr")
        with pytest.raises(PipelineError):
            service.pipeline("nope")
        with pytest.raises(PipelineError):
            service.drain(max_jobs=-1)
        assert service.drain() == []


class TestFeedbackRevision:
    def test_revision_tracks_guidance_changes(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        before = pipeline.feedback_loop.revision
        candidate_set = pipeline.generate_candidates(QUERIES[0])
        pipeline.submit_feedback(
            candidate_set,
            Feedback(
                action=FeedbackAction.ACCEPT,
                selected_index=0,
                new_priorities=["mention currencies"],
                knowledge=[("acad_term", "academic term")],
            ),
        )
        assert pipeline.feedback_loop.revision > before


class TestServiceUsageAccounting:
    def test_shared_llm_counts_once(self, hr_schema):
        llm = SimulatedLLM("gpt-4o", schema=hr_schema)
        service = AnnotationService()
        service.register_project("a", hr_schema, llm=llm)
        service.register_project("b", hr_schema, llm=llm)
        service.submit(QUERIES[0], project="a")
        service.submit(QUERIES[1], project="b")
        service.drain()
        assert service.stats.usage_by_model["gpt-4o"].prompts == llm.usage.prompts

    def test_warm_archive_skips_the_ramp(self, hr_schema):
        pipeline = AnnotationPipeline(
            hr_schema, config=TaskConfig(batch_size=8), dataset_name="hr"
        )
        pipeline.annotate_many(QUERIES)  # cold run ramps 1, 2, 4, ...
        assert pipeline.last_run_stats.waves > 1
        pipeline.annotate_many(QUERIES)  # archive warm: one full-size wave
        assert pipeline.last_run_stats.waves == 1
