"""Seeded chaos sweep: every schedule must converge to the fault-free state.

Each seed drives the full harness in :mod:`tests.chaos` — LLM faults, torn
crashes, disk faults and expired-deadline drains composed by one seeded
schedule — and asserts the three invariants (no committed record lost, all
jobs eventually drain, results bit-identical to a fault-free run).

``CHAOS_SEEDS`` (env var) trims the sweep for quick CI smoke runs; the full
default sweep covers 24 seeds.
"""

from __future__ import annotations

import os

import pytest

from tests.chaos import (
    ChaosSchedule,
    run_chaos_scenario,
    run_reference,
)

DEFAULT_SEEDS = 24
SEEDS = list(range(int(os.environ.get("CHAOS_SEEDS", DEFAULT_SEEDS))))


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    return run_reference(tmp_path_factory.mktemp("chaos-reference"))


class TestChaosSweep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_schedule_converges_to_reference(self, seed, reference, tmp_path):
        result = run_chaos_scenario(seed, tmp_path)
        assert result.records == reference, (
            f"seed {seed}: final records diverged from the fault-free run "
            f"(after {result.crashes} crashes, {result.disk_faults} disk "
            f"faults, {result.llm_failures} LLM failures, "
            f"{result.deferrals} deferrals)"
        )

    def test_schedules_are_deterministic(self, tmp_path):
        """Same seed, same faults: the harness itself must be reproducible."""
        first = run_chaos_scenario(7, tmp_path / "a")
        second = run_chaos_scenario(7, tmp_path / "b")
        assert (first.crashes, first.disk_faults, first.drains) == (
            second.crashes,
            second.disk_faults,
            second.drains,
        )
        assert first.records == second.records
        assert first.llm_failures == second.llm_failures

    def test_schedules_actually_inject_faults(self):
        """The sweep must not silently degenerate into fault-free runs."""
        crashes = disk = 0
        for seed in SEEDS:
            for kind, _ in ChaosSchedule(seed).journal_faults.values():
                if kind == "crash":
                    crashes += 1
                else:
                    disk += 1
        assert crashes > 0 and disk > 0
