"""End-to-end integration tests spanning the full BenchPress pipeline."""

import json

from repro.core import Feedback, FeedbackAction, TaskConfig, Workspace, export_benchmark_json
from repro.llm import SimulatedLLM
from repro.metrics import grade_backtranslation, judge_annotation
from repro.study import Condition, StudyRunner, accuracy_table, latency_table


class TestAnnotationEndToEnd:
    def test_benchmark_project_full_loop(self, tmp_path, tiny_beaver):
        """Ingest a benchmark, annotate with feedback, export, and validate quality."""
        workspace = Workspace("analyst", api_key="local-key")
        project = workspace.create_project_from_benchmark(
            "beaver-curation", "Beaver", query_count=6, seed=11
        )
        pipeline = project.pipeline

        # Annotate the first queries accepting the top suggestion, inject
        # domain knowledge along the way.
        queries = list(project.pending_queries)[:4]
        for index, sql in enumerate(queries):
            feedback = Feedback(
                action=FeedbackAction.ACCEPT,
                selected_index=0,
                knowledge=[("Moira", "the mailing list system")] if index == 0 else [],
            )
            candidate_set = pipeline.generate_candidates(sql)
            record = pipeline.submit_feedback(candidate_set, feedback)
            assert record is not None and record.nl

        # The example store grows as annotations are accepted (warm retrieval).
        assert pipeline.example_count == 4
        assert len(pipeline.feedback_loop.knowledge) == 1

        # Export in benchmark-ready JSON.
        path = export_benchmark_json(pipeline.annotations, tmp_path / "bench.json")
        records = json.loads(path.read_text())
        assert len(records) == 4
        assert all(record["db_id"] == "Beaver" for record in records)

    def test_annotations_judged_reasonably_accurate(self, hr_schema):
        from repro.core import AnnotationPipeline

        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        sql = (
            "SELECT departments.dept_name, COUNT(*) FROM employees "
            "JOIN departments ON employees.dept_id = departments.dept_id "
            "WHERE employees.salary > 80000 GROUP BY departments.dept_name"
        )
        record = pipeline.annotate(sql)
        judgement = judge_annotation(sql, record.nl)
        assert judgement.coverage > 0.5

    def test_backtranslation_of_pipeline_output(self, hr_schema, hr_database):
        from repro.core import AnnotationPipeline

        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        sql = "SELECT name FROM employees WHERE salary > 90000"
        record = pipeline.annotate(sql)
        backtranslator = SimulatedLLM("gpt-4o", schema=hr_schema)
        predicted = backtranslator.backtranslate(record.nl)
        judgement = grade_backtranslation(hr_database, sql, predicted)
        assert judgement.level >= 3


class TestStudyEndToEnd:
    def test_small_study_reproduces_orderings(self, tiny_beaver, tiny_bird):
        """The key qualitative findings of Tables 3-4 hold on a miniature study."""
        runner = StudyRunner(
            tiny_beaver, tiny_bird, participant_count=9, queries_per_dataset=4, seed=3
        )
        result = runner.run()
        accuracy = accuracy_table(result)
        latency = latency_table(result)

        # Latency: manual annotation is by far the slowest (Table 4 shape).
        assert latency.total[Condition.MANUAL] > 2 * latency.total[Condition.BENCHPRESS]

        # Accuracy: BenchPress >= the other conditions overall (Table 3 shape).
        assert accuracy.overall[Condition.BENCHPRESS] >= accuracy.overall[Condition.VANILLA_LLM]
        assert accuracy.overall[Condition.BENCHPRESS] >= accuracy.overall[Condition.MANUAL]

        # The enterprise dataset is the harder one for unassisted conditions.
        beaver_manual = accuracy.per_dataset["Beaver"][Condition.MANUAL]
        bird_manual = accuracy.per_dataset["Bird"][Condition.MANUAL]
        assert bird_manual >= beaver_manual


class TestAblations:
    def test_rag_and_knowledge_improve_prompt_fidelity(self, tiny_beaver):
        """Ablation direction check: assistance features raise candidate fidelity."""
        from repro.core import AnnotationPipeline

        sql = tiny_beaver.queries[0].sql
        full = AnnotationPipeline(
            tiny_beaver.schema, config=TaskConfig(), dataset_name="Beaver"
        )
        bare = AnnotationPipeline(
            tiny_beaver.schema,
            config=TaskConfig(rag_enabled=False, knowledge_feedback_enabled=False),
            dataset_name="Beaver",
        )
        full_candidates = full.generate_candidates(sql)
        bare_candidates = bare.generate_candidates(sql)
        full_fidelity = full.llm.effective_fidelity(full_candidates.prompt)
        bare_fidelity = bare.llm.effective_fidelity(bare_candidates.prompt)
        assert full_fidelity >= bare_fidelity
