"""Observability-stack tests: the metrics registry (behaviour, exposition
stability, thread safety), tracer (nesting, context isolation, ring bound,
JSONL export), structured logging, the Telemetry facade, end-to-end service
instrumentation (drain parity with and without telemetry, quarantine error
detail, journal/snapshot round-trips of telemetry counters, thread stress
under flaky clients), and engine-side EXPLAIN ANALYZE plus the slow-query
log across all three executor modes."""

from __future__ import annotations

import json
import logging
import re
import threading
from pathlib import Path

import pytest

from repro.core import AnnotationService, TaskConfig
from repro.engine import Database
from repro.errors import BackpressureError, ExecutionError, LLMError
from repro.llm import SimulatedLLM
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_TELEMETRY,
    MetricsRegistry,
    NullTelemetry,
    StructuredLogger,
    Telemetry,
    Tracer,
    current_span,
)

from tests.test_concurrency import (
    PROJECTS,
    QUERIES,
    build_service,
    completed_keys,
    make_schema,
    submit_mix,
)
from tests.faults import FlakyLLM

MODES = ("interpreted", "compiled", "planned")


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", project="alpha")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

        gauge = registry.gauge("queue_depth")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 4

        histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        for sample in (0.05, 0.5, 5.0):
            histogram.observe(sample)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(5.55)
        assert histogram.cumulative() == [(0.1, 1), (1.0, 2), (float("inf"), 3)]

    def test_boundary_sample_lands_in_inclusive_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0))
        histogram.observe(0.1)  # le="0.1" is an inclusive upper bound
        assert histogram.cumulative()[0] == (0.1, 1)

    def test_same_labels_return_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", project="alpha", kind="x")
        b = registry.counter("c_total", kind="x", project="alpha")
        assert a is b
        assert registry.counter("c_total", project="beta") is not a

    def test_type_and_bucket_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("m_total")
        with pytest.raises(ValueError):
            registry.gauge("m_total")
        registry.histogram("h_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h_seconds", buckets=(1.0, 5.0))
        # Omitting buckets on later calls is fine.
        registry.histogram("h_seconds").observe(0.5)

    def test_bad_buckets_rejected(self):
        # Empty buckets mean "use the defaults"; bad orderings are errors.
        histogram = MetricsRegistry().histogram("h", buckets=())
        assert histogram.buckets == DEFAULT_LATENCY_BUCKETS
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_prometheus_exposition_is_byte_stable(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", help="Jobs processed.", project="alpha").inc()
        registry.counter("jobs_total", project="beta").inc(2)
        registry.gauge("queue_depth").set(3)
        histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        for sample in (0.05, 0.5, 5.0):
            histogram.observe(sample)

        expected = (
            "# HELP jobs_total Jobs processed.\n"
            "# TYPE jobs_total counter\n"
            'jobs_total{project="alpha"} 1\n'
            'jobs_total{project="beta"} 2\n'
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.1"} 1\n'
            'latency_seconds_bucket{le="1"} 2\n'
            'latency_seconds_bucket{le="+Inf"} 3\n'
            "latency_seconds_sum 5.55\n"
            "latency_seconds_count 3\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth 3\n"
        )
        assert registry.render_prometheus() == expected
        # Rendering is a pure read: a second pass is identical.
        assert registry.render_prometheus() == expected

    def test_as_dict_matches_exposition_and_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", project="alpha").inc()
        registry.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.5)
        snapshot = registry.as_dict()
        assert snapshot["jobs_total"]["type"] == "counter"
        assert snapshot["jobs_total"]["series"] == [
            {"labels": {"project": "alpha"}, "value": 1.0}
        ]
        histogram = snapshot["latency_seconds"]["series"][0]
        assert histogram["count"] == 1
        assert histogram["buckets"] == {"0.1": 0, "1": 1, "+Inf": 1}
        json.dumps(snapshot)  # must be JSON-serialisable as-is

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", sql='SELECT "a"\nFROM t\\x').inc()
        rendered = registry.render_prometheus()
        assert 'sql="SELECT \\"a\\"\\nFROM t\\\\x"' in rendered

    def test_registry_is_thread_safe_under_contention(self):
        registry = MetricsRegistry()
        threads_n, increments = 8, 2500

        def hammer():
            for _ in range(increments):
                registry.counter("hits_total", worker="shared").inc()
                registry.histogram("work_seconds", worker="shared").observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = threads_n * increments
        assert registry.counter("hits_total", worker="shared").value == total
        assert registry.histogram("work_seconds", worker="shared").count == total


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_nesting_parent_and_trace_ids(self):
        tracer = Tracer()
        with tracer.span("outer", project="alpha") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id == outer.span_id
        assert current_span() is None
        spans = tracer.finished_spans()
        assert [span.name for span in spans] == ["inner", "outer"]
        assert all(span.ended for span in spans)
        assert all(span.duration_seconds >= 0 for span in spans)

    def test_error_status_and_attribute(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = tracer.finished_spans()
        assert span.status == "error"
        assert span.attributes["error"] == "RuntimeError: boom"

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["s6", "s7", "s8", "s9"]
        tracer.clear()
        assert tracer.finished_spans() == []
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_threads_have_independent_current_span(self):
        tracer = Tracer()
        seen: dict[str, int | None] = {}

        def worker(name: str):
            with tracer.span(name) as span:
                seen[name] = span.parent_id

        with tracer.span("main-scope"):
            threads = [
                threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Worker threads start fresh contexts: no parent leaks across threads.
        assert all(parent is None for parent in seen.values())

    def test_export_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", project="alpha"):
            with tracer.span("inner", job_id=7):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        lines = path.read_text(encoding="utf-8").splitlines()
        rows = [json.loads(line) for line in lines]
        assert [row["name"] for row in rows] == ["inner", "outer"]
        inner, outer = rows
        assert inner["parent_id"] == outer["span_id"]
        assert inner["attributes"] == {"job_id": 7}
        assert {"trace_id", "start_unix", "duration_seconds", "status"} <= set(inner)


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------

class TestStructuredLogging:
    def test_event_lines_carry_sorted_fields_and_span_ids(self, caplog):
        tracer = Tracer()
        log = StructuredLogger("repro.test.obs")
        with caplog.at_level(logging.INFO, logger="repro.test.obs"):
            with tracer.span("drain", project="alpha", job_id=3) as span:
                log.event("job_quarantined", error_type="LLMError", zeta=1)
        record = caplog.records[-1]
        message = record.getMessage()
        assert message.startswith("job_quarantined error_type=LLMError zeta=1")
        assert f"trace_id={span.trace_id}" in message
        assert f"span_id={span.span_id}" in message
        assert "project=alpha" in message
        assert "job_id=3" in message
        assert record.trace_id == span.trace_id

    def test_event_outside_span_has_no_span_fields(self, caplog):
        log = StructuredLogger("repro.test.obs")
        with caplog.at_level(logging.INFO, logger="repro.test.obs"):
            log.event("startup", version=1)
        message = caplog.records[-1].getMessage()
        assert message == "startup version=1"
        assert caplog.records[-1].trace_id == ""


# ----------------------------------------------------------------------
# the Telemetry facade
# ----------------------------------------------------------------------

class TestTelemetryFacade:
    def test_live_facade_records_into_registry_and_tracer(self):
        telemetry = Telemetry()
        telemetry.count("a_total", project="p")
        telemetry.gauge("g", 2.0)
        telemetry.observe("h_seconds", 0.01)
        telemetry.observe_size("batch_size", 3)
        with telemetry.span("scope") as span:
            span.set_attribute("k", "v")
        snapshot = telemetry.metrics_dict()
        assert snapshot["a_total"]["series"][0]["value"] == 1.0
        assert snapshot["batch_size"]["type"] == "histogram"
        assert telemetry.render_prometheus().endswith("\n")
        assert [s.name for s in telemetry.tracer.finished_spans()] == ["scope"]

    def test_null_telemetry_is_inert_and_reentrant(self):
        null = NULL_TELEMETRY
        assert isinstance(null, NullTelemetry)
        assert null.enabled is False
        null.count("x_total")
        null.gauge("g", 1.0)
        null.observe("h", 0.5)
        null.observe_size("s", 2)
        null.event("anything", project="p")
        with null.span("outer") as outer:
            outer.set_attribute("k", "v")
            with null.span("inner"):
                pass
        assert null.metrics_dict() == {}
        assert null.render_prometheus() == ""
        # Exceptions must still propagate through the null span scope.
        with pytest.raises(RuntimeError):
            with null.span("failing"):
                raise RuntimeError("boom")


# ----------------------------------------------------------------------
# service-level instrumentation
# ----------------------------------------------------------------------

def build_telemetry_service(telemetry=None, **kwargs):
    service = AnnotationService(
        max_concurrency=kwargs.pop("max_concurrency", 1), telemetry=telemetry
    )
    for name in kwargs.pop("projects", PROJECTS):
        llm_factory = kwargs.get("llm_factory")
        llm = llm_factory(name) if llm_factory is not None else None
        service.register_project(
            name,
            make_schema(),
            config=kwargs.get("config") or TaskConfig(batch_size=3),
            llm=llm,
        )
    return service


class TestServiceTelemetry:
    @pytest.mark.parametrize("concurrency", [1, 4])
    def test_drain_results_identical_with_and_without_telemetry(self, concurrency):
        plain = build_service(max_concurrency=concurrency)
        submit_mix(plain)
        expected = plain.drain()

        traced = build_telemetry_service(
            telemetry=Telemetry(), max_concurrency=concurrency
        )
        submit_mix(traced)
        actual = traced.drain()

        assert completed_keys(actual) == completed_keys(expected)
        assert traced.stats.llm_requests == plain.stats.llm_requests

    def test_drain_populates_expected_metric_families(self):
        telemetry = Telemetry()
        service = build_telemetry_service(telemetry=telemetry, max_concurrency=2)
        submit_mix(service)
        completed = service.drain()
        assert completed
        snapshot = telemetry.metrics_dict()
        for family in (
            "service_jobs_submitted_total",
            "service_jobs_completed_total",
            "service_drain_seconds",
            "service_pending_jobs",
            "scheduler_rounds_total",
            "scheduler_round_active_projects",
            "pipeline_wave_size",
            "pipeline_wave_llm_seconds",
            "pipeline_wave_queue_wait_seconds",
            "llm_requests_total",
            "llm_call_seconds",
            "llm_prompt_tokens_total",
            "retrieval_searches_total",
        ):
            assert family in snapshot, f"missing metric family {family}"
        submitted = sum(
            series["value"]
            for series in snapshot["service_jobs_submitted_total"]["series"]
        )
        assert submitted == service.stats.submitted
        llm_total = sum(
            series["value"] for series in snapshot["llm_requests_total"]["series"]
        )
        assert llm_total == service.stats.llm_requests
        span_names = {span.name for span in telemetry.tracer.finished_spans()}
        assert "service.drain" in span_names
        assert "pipeline.wave" in span_names

    def test_backpressure_rejection_is_counted(self):
        telemetry = Telemetry()
        service = build_telemetry_service(
            telemetry=telemetry,
            projects=["alpha"],
            config=TaskConfig(batch_size=3, max_pending_per_project=2),
        )
        service.submit(QUERIES[0], project="alpha")
        service.submit(QUERIES[1], project="alpha")
        with pytest.raises(BackpressureError):
            service.submit(QUERIES[2], project="alpha")
        snapshot = telemetry.metrics_dict()
        assert (
            snapshot["service_backpressure_total"]["series"][0]["value"] == 1.0
        )

    def test_quarantine_counts_and_error_detail(self):
        telemetry = Telemetry()

        def terminal_factory(name):
            return FlakyLLM(
                SimulatedLLM("gpt-4o", schema=make_schema()),
                fail_times=10_000,
                error_factory=lambda n: LLMError(f"terminal backend failure #{n}"),
            )

        service = build_telemetry_service(
            telemetry=telemetry,
            projects=["alpha"],
            config=TaskConfig(
                batch_size=3,
                llm_retry_base_delay=0.001,
                llm_retry_max_delay=0.002,
            ),
            llm_factory=terminal_factory,
        )
        service.submit(QUERIES[0], project="alpha")
        completed = service.drain()
        assert len(completed) == 1
        failed = completed[0]
        assert failed.record is None
        assert failed.error_type == "LLMError"
        assert "terminal backend failure" in failed.error
        from repro.core.service import MAX_TRACEBACK_CHARS

        assert "LLMError" in failed.traceback
        assert len(failed.traceback) <= MAX_TRACEBACK_CHARS + len("... (truncated)\n")
        assert service.quarantine[0].traceback == failed.traceback
        snapshot = telemetry.metrics_dict()
        quarantined = snapshot["service_jobs_quarantined_total"]["series"]
        assert quarantined[0]["labels"]["error_type"] == "LLMError"
        assert quarantined[0]["value"] == 1.0
        assert "llm_errors_total" in snapshot

    def test_truncated_traceback_keeps_the_tail(self):
        from repro.core.service import (
            MAX_TRACEBACK_CHARS,
            format_quarantine_traceback,
        )

        try:
            raise LLMError("x" * (3 * MAX_TRACEBACK_CHARS))
        except LLMError as exc:
            rendered = format_quarantine_traceback(exc)
        assert rendered.startswith("... (truncated)\n")
        assert len(rendered) <= MAX_TRACEBACK_CHARS + len("... (truncated)\n")
        # Truncation keeps the tail, where the raise site and message live.
        assert rendered.endswith("x" * 50 + "\n")

    def test_quarantine_error_detail_survives_journal_recovery(self, tmp_path):
        def terminal_factory(name):
            return FlakyLLM(
                SimulatedLLM("gpt-4o", schema=make_schema()),
                fail_times=10_000,
                error_factory=lambda n: LLMError(f"persistent outage #{n}"),
            )

        service = AnnotationService.open_durable(
            tmp_path / "svc", llm_factory=terminal_factory
        )
        service.register_project(
            "alpha",
            make_schema(),
            config=TaskConfig(
                batch_size=3,
                llm_retry_base_delay=0.001,
                llm_retry_max_delay=0.002,
            ),
            llm=terminal_factory("alpha"),
        )
        service.submit(QUERIES[0], project="alpha")
        service.drain()
        service.close()

        recovered = AnnotationService.open_durable(
            tmp_path / "svc", llm_factory=terminal_factory
        )
        assert len(recovered.quarantine) == 1
        item = recovered.quarantine[0]
        assert item.error_type == "LLMError"
        assert "persistent outage" in item.error
        assert "LLMError" in item.traceback

    def test_stats_snapshot_restore_replay_round_trip(self, tmp_path):
        service = AnnotationService.open_durable(
            tmp_path / "svc", snapshot_every=4
        )
        for name in PROJECTS[:2]:
            service.register_project(
                name, make_schema(), config=TaskConfig(batch_size=3)
            )
        submit_mix(service, projects=PROJECTS[:2])
        service.drain()
        assert service.stats.llm_requests > 0
        state = service.capture_state()
        assert state["stats"]["llm_requests"] == service.stats.llm_requests
        service.close()

        # Warm start (snapshot + suffix) and cold replay must both restore
        # the telemetry-era counters, including llm_requests.
        warm = AnnotationService.open_durable(tmp_path / "svc")
        cold = AnnotationService.recover(tmp_path / "svc" / "journal.bin")
        for recovered in (warm, cold):
            assert recovered.stats.llm_requests == service.stats.llm_requests
            assert recovered.stats.completed == service.stats.completed
            assert recovered.stats.waves == service.stats.waves
        warm.close()
        cold.close()

        restored = AnnotationService()
        restored.restore_state(state)
        assert restored.stats.llm_requests == service.stats.llm_requests

    def test_flaky_thread_stress_with_shared_telemetry(self):
        retry_config = TaskConfig(
            batch_size=3, llm_retry_base_delay=0.001, llm_retry_max_delay=0.002
        )

        def flaky_factory(name):
            return FlakyLLM(
                SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2
            )

        reference = build_service(config=retry_config, llm_factory=flaky_factory)
        submit_mix(reference)
        expected = completed_keys(reference.drain())

        telemetry = Telemetry()
        stressed = build_telemetry_service(
            telemetry=telemetry,
            max_concurrency=4,
            config=retry_config,
            llm_factory=flaky_factory,
        )
        submit_mix(stressed)
        assert completed_keys(stressed.drain()) == expected

        snapshot = telemetry.metrics_dict()
        retries = sum(
            series["value"] for series in snapshot["llm_retries_total"]["series"]
        )
        # Four tenants, each with an independent 2-failure budget.
        assert retries == 2 * len(PROJECTS)
        assert "llm_backoff_seconds" in snapshot
        # Registry survived concurrent drains: exposition still renders.
        assert telemetry.render_prometheus().strip()

    def test_durable_drain_counts_journal_and_snapshot_writes(self, tmp_path):
        telemetry = Telemetry()
        service = AnnotationService.open_durable(
            tmp_path / "svc", snapshot_every=2, telemetry=telemetry
        )
        service.register_project(
            "alpha", make_schema(), config=TaskConfig(batch_size=3)
        )
        service.submit(QUERIES[0], project="alpha")
        service.submit(QUERIES[1], project="alpha")
        service.drain()
        service.close()
        snapshot = telemetry.metrics_dict()
        appends = {
            series["labels"]["type"]: series["value"]
            for series in snapshot["journal_appends_total"]["series"]
        }
        assert appends.get("job_submitted") == 2.0
        assert "project_registered" in appends
        assert "journal_bytes_total" in snapshot
        assert "journal_fsyncs_total" in snapshot
        assert snapshot["snapshot_writes_total"]["series"][0]["value"] >= 1.0
        assert "snapshot_write_seconds" in snapshot


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE + slow-query log
# ----------------------------------------------------------------------

@pytest.fixture()
def shop() -> Database:
    database = Database("shop")
    database.execute(
        "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, tier TEXT)"
    )
    database.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, status TEXT)"
    )
    database.execute(
        "INSERT INTO customers (id, name, tier) VALUES "
        + ", ".join(
            f"({i}, 'cust_{i}', '{'gold' if i % 4 == 0 else 'basic'}')"
            for i in range(12)
        )
    )
    database.execute(
        "INSERT INTO orders (id, customer_id, status) VALUES "
        + ", ".join(
            f"({i}, {i % 12}, '{'open' if i % 3 else 'closed'}')" for i in range(40)
        )
    )
    return database


GROUPED_SQL = (
    "SELECT customer_id, COUNT(*) AS n FROM orders WHERE status = 'open' "
    "GROUP BY customer_id ORDER BY n DESC, customer_id LIMIT 5"
)


class TestExplainAnalyze:
    @pytest.mark.parametrize("mode", MODES)
    def test_analyze_reports_operators_without_perturbing_results(self, shop, mode):
        shop.executor_mode = mode
        baseline = shop.execute(GROUPED_SQL)
        info = shop.explain(GROUPED_SQL, analyze=True)
        analyze = info["analyze"]
        assert analyze["executor_mode"] == mode
        assert analyze["rows_returned"] == len(baseline.rows)
        assert analyze["columns"] == baseline.columns
        assert analyze["total_seconds"] >= 0
        assert analyze["truncated"] is False
        ops = [operator["op"] for operator in analyze["operators"]]
        assert "scan" in ops
        assert "filter" in ops
        assert "sort" in ops
        assert "limit" in ops
        assert "aggregate" in ops
        scan = next(o for o in analyze["operators"] if o["op"] == "scan")
        assert scan["rows_out"] == 40
        filtered = next(o for o in analyze["operators"] if o["op"] == "filter")
        assert filtered["rows_in"] == 40
        assert 0 < filtered["rows_out"] < 40
        limit = next(o for o in analyze["operators"] if o["op"] == "limit")
        assert limit["rows_out"] == len(baseline.rows)
        # Running ANALYZE leaves the database unchanged: same rows afterwards.
        assert shop.execute(GROUPED_SQL).rows == baseline.rows

    def test_analyze_rows_agree_across_modes(self, shop):
        reference = None
        for mode in MODES:
            shop.executor_mode = mode
            rows = shop.execute(GROUPED_SQL).rows
            shop.explain(GROUPED_SQL, analyze=True)
            again = shop.execute(GROUPED_SQL).rows
            assert again == rows
            if reference is None:
                reference = rows
            assert rows == reference

    def test_analyze_counts_plan_cache_and_compiled_expressions(self, shop):
        shop.executor_mode = "compiled"
        sql = "SELECT name FROM customers WHERE tier = 'gold' ORDER BY name"
        first = shop.explain(sql, analyze=True)["analyze"]
        second = shop.explain(sql, analyze=True)["analyze"]
        assert first["plan_cache"]["misses"] >= 1 or first["plan_cache"]["hits"] >= 1
        # The second run must be served from the statement cache.
        assert second["plan_cache"]["hits"] >= 1
        assert second["plan_cache"]["misses"] == 0
        assert first["expressions"]["compiled"] >= 1

    def test_analyze_planned_mode_reports_source_planner(self, shop):
        shop.executor_mode = "planned"
        sql = (
            "SELECT o.id, c.name FROM orders o JOIN customers c "
            "ON o.customer_id = c.id WHERE c.tier = 'gold' ORDER BY o.id"
        )
        analyze = shop.explain(sql, analyze=True)["analyze"]
        ops = [operator["op"] for operator in analyze["operators"]]
        assert "planned_source" in ops
        planned = next(
            o for o in analyze["operators"] if o["op"] == "planned_source"
        )
        assert planned["rows_out"] == len(shop.execute(sql).rows)
        # explain() itself already planned the statement, so the analyzed
        # execution is served from the planner cache.
        planner_delta = analyze["source_planner"]
        assert planner_delta["plans_built"] + planner_delta["cache_hits"] >= 1

    def test_analyze_set_operation_and_subquery_depth(self, shop):
        shop.executor_mode = "interpreted"
        union = shop.explain(
            "SELECT name FROM customers WHERE tier = 'gold' "
            "UNION SELECT name FROM customers WHERE id < 2 ORDER BY name",
            analyze=True,
        )["analyze"]
        ops = [operator["op"] for operator in union["operators"]]
        assert "set_op" in ops
        set_op = next(o for o in union["operators"] if o["op"] == "set_op")
        assert set_op["operator"] == "UNION"
        assert set_op["depth"] == 0
        # Both branches executed under the set operation at depth 1.
        assert [o["depth"] for o in union["operators"] if o["op"] == "scan"] == [1, 1]

        nested = shop.explain(
            "SELECT name FROM customers WHERE id IN "
            "(SELECT customer_id FROM orders WHERE status = 'closed')",
            analyze=True,
        )["analyze"]
        depths = {o["depth"] for o in nested["operators"]}
        assert 0 in depths
        assert any(depth > 0 for depth in depths)

    def test_analyze_cannot_nest(self, shop):
        from repro.engine.executor import _AnalyzeCollector

        executor = shop._executor
        statement = shop.parse_cached("SELECT name FROM customers")
        executor.analyze_select(statement)  # plain analyze is fine
        executor._analyze = _AnalyzeCollector()  # simulate an in-flight analyze
        try:
            with pytest.raises(ExecutionError):
                executor.analyze_select(statement)
        finally:
            executor._analyze = None

    def test_explain_without_analyze_is_unchanged(self, shop):
        info = shop.explain(GROUPED_SQL)
        assert "analyze" not in info
        info = shop.explain(GROUPED_SQL, analyze=False)
        assert "analyze" not in info

    def test_slow_query_log_capture_and_disable(self, shop):
        telemetry = Telemetry()
        shop.telemetry = telemetry
        shop.set_slow_query_log(0.0)  # everything is "slow"
        shop.execute("SELECT name FROM customers WHERE tier = 'gold'")
        assert len(shop.slow_queries) == 1
        entry = shop.slow_queries[0]
        assert entry["sql"] == "SELECT name FROM customers WHERE tier = 'gold'"
        assert entry["seconds"] >= 0
        assert entry["rows"] == 3
        snapshot = telemetry.metrics_dict()
        assert snapshot["database_slow_queries_total"]["series"][0]["value"] == 1.0

        shop.set_slow_query_log(None)
        shop.execute("SELECT name FROM customers")
        assert len(shop.slow_queries) == 1  # disabled: nothing new recorded

    def test_slow_query_log_threshold_filters_fast_queries(self, shop):
        shop.set_slow_query_log(10.0)  # nothing takes ten seconds
        shop.execute("SELECT name FROM customers")
        assert len(shop.slow_queries) == 0

    def test_slow_query_log_capacity_bounds_the_ring(self, shop):
        shop.set_slow_query_log(0.0, capacity=2)
        for index in range(5):
            shop.execute(f"SELECT name FROM customers WHERE id = {index}")
        assert len(shop.slow_queries) == 2
        assert shop.slow_queries[-1]["sql"].endswith("id = 4")
        with pytest.raises(ValueError):
            shop.set_slow_query_log(-1.0)
        with pytest.raises(ValueError):
            shop.set_slow_query_log(0.0, capacity=0)


# ----------------------------------------------------------------------
# benchmark hygiene (satellite: perf_counter standardisation)
# ----------------------------------------------------------------------

def test_benchmarks_use_perf_counter_not_wall_clock():
    """Benchmark timing must be monotonic: no ``time.time()`` anywhere."""
    bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    offenders = []
    for path in sorted(bench_dir.glob("*.py")):
        if re.search(r"\btime\.time\(", path.read_text(encoding="utf-8")):
            offenders.append(path.name)
    assert offenders == [], f"benchmarks using wall-clock timing: {offenders}"
