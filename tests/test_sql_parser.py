"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import (
    Between,
    BinaryOp,
    BinaryOperator,
    CaseWhen,
    ColumnRef,
    CreateTable,
    Exists,
    FunctionCall,
    Insert,
    InList,
    InSubquery,
    IsNull,
    Join,
    JoinType,
    Like,
    Literal,
    ScalarSubquery,
    Select,
    SetOperator,
    Star,
    SubqueryRef,
    TableRef,
    parse,
    parse_expression,
    parse_many,
    parse_select,
)


class TestBasicSelect:
    def test_simple_select(self):
        select = parse_select("SELECT a, b FROM t")
        assert len(select.select_items) == 2
        assert isinstance(select.from_relation, TableRef)
        assert select.from_relation.name == "t"

    def test_select_star(self):
        select = parse_select("SELECT * FROM t")
        assert isinstance(select.select_items[0].expression, Star)

    def test_qualified_star(self):
        select = parse_select("SELECT t.* FROM t")
        star = select.select_items[0].expression
        assert isinstance(star, Star)
        assert star.table == "t"

    def test_select_distinct(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct is True

    def test_alias_with_as(self):
        select = parse_select("SELECT a AS alias_name FROM t")
        assert select.select_items[0].alias == "alias_name"

    def test_alias_without_as(self):
        select = parse_select("SELECT a alias_name FROM t")
        assert select.select_items[0].alias == "alias_name"

    def test_table_alias(self):
        select = parse_select("SELECT x.a FROM long_table x")
        assert select.from_relation.alias == "x"

    def test_select_without_from(self):
        select = parse_select("SELECT 1 + 1")
        assert select.from_relation is None

    def test_qualified_column(self):
        select = parse_select("SELECT t.a FROM t")
        column = select.select_items[0].expression
        assert isinstance(column, ColumnRef)
        assert column.table == "t"
        assert column.name == "a"


class TestClauses:
    def test_where(self):
        select = parse_select("SELECT a FROM t WHERE a > 5")
        assert isinstance(select.where, BinaryOp)
        assert select.where.op is BinaryOperator.GT

    def test_group_by_multiple(self):
        select = parse_select("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        assert len(select.group_by) == 2

    def test_having(self):
        select = parse_select("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert select.having is not None

    def test_order_by_directions(self):
        select = parse_select("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        assert select.order_by[0].ascending is False
        assert select.order_by[1].ascending is True

    def test_order_by_nulls(self):
        select = parse_select("SELECT a FROM t ORDER BY a ASC NULLS LAST")
        assert select.order_by[0].nulls_first is False

    def test_limit(self):
        assert parse_select("SELECT a FROM t LIMIT 10").limit == 10

    def test_limit_offset(self):
        select = parse_select("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert select.limit == 10
        assert select.offset == 5

    def test_limit_requires_number(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t LIMIT abc")


class TestJoins:
    def test_inner_join_on(self):
        select = parse_select("SELECT * FROM a JOIN b ON a.id = b.id")
        join = select.from_relation
        assert isinstance(join, Join)
        assert join.join_type is JoinType.INNER
        assert join.condition is not None

    def test_left_outer_join(self):
        select = parse_select("SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id")
        assert select.from_relation.join_type is JoinType.LEFT

    def test_right_and_full_join(self):
        assert parse_select("SELECT * FROM a RIGHT JOIN b ON a.id = b.id").from_relation.join_type is JoinType.RIGHT
        assert parse_select("SELECT * FROM a FULL JOIN b ON a.id = b.id").from_relation.join_type is JoinType.FULL

    def test_cross_join(self):
        select = parse_select("SELECT * FROM a CROSS JOIN b")
        assert select.from_relation.join_type is JoinType.CROSS

    def test_comma_join_is_cross(self):
        select = parse_select("SELECT * FROM a, b")
        assert select.from_relation.join_type is JoinType.CROSS

    def test_join_using(self):
        select = parse_select("SELECT * FROM a JOIN b USING (id, name)")
        assert select.from_relation.using_columns == ["id", "name"]

    def test_three_way_join_nests_left(self):
        select = parse_select(
            "SELECT * FROM a JOIN b ON a.id = b.id JOIN c ON b.id = c.id"
        )
        outer = select.from_relation
        assert isinstance(outer, Join)
        assert isinstance(outer.left, Join)
        assert isinstance(outer.right, TableRef)

    def test_derived_table(self):
        select = parse_select("SELECT * FROM (SELECT a FROM t) AS sub")
        assert isinstance(select.from_relation, SubqueryRef)
        assert select.from_relation.alias == "sub"


class TestExpressions:
    def test_precedence_multiplication_before_addition(self):
        expression = parse_expression("1 + 2 * 3")
        assert isinstance(expression, BinaryOp)
        assert expression.op is BinaryOperator.ADD
        assert isinstance(expression.right, BinaryOp)
        assert expression.right.op is BinaryOperator.MUL

    def test_parentheses_override_precedence(self):
        expression = parse_expression("(1 + 2) * 3")
        assert expression.op is BinaryOperator.MUL

    def test_and_or_precedence(self):
        expression = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expression.op is BinaryOperator.OR
        assert expression.right.op is BinaryOperator.AND

    def test_not(self):
        expression = parse_expression("NOT a = 1")
        from repro.sql import UnaryOp, UnaryOperator

        assert isinstance(expression, UnaryOp)
        assert expression.op is UnaryOperator.NOT

    def test_in_list(self):
        expression = parse_expression("a IN (1, 2, 3)")
        assert isinstance(expression, InList)
        assert len(expression.values) == 3

    def test_not_in_list(self):
        assert parse_expression("a NOT IN (1)").negated is True

    def test_between(self):
        expression = parse_expression("a BETWEEN 1 AND 10")
        assert isinstance(expression, Between)

    def test_like(self):
        expression = parse_expression("name LIKE 'A%'")
        assert isinstance(expression, Like)

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("a IS NULL"), IsNull)
        assert parse_expression("a IS NOT NULL").negated is True

    def test_case_when(self):
        expression = parse_expression("CASE WHEN a > 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expression, CaseWhen)
        assert expression.else_result is not None

    def test_simple_case_normalised(self):
        expression = parse_expression("CASE a WHEN 1 THEN 'x' END")
        condition, _ = expression.conditions[0]
        assert isinstance(condition, BinaryOp)
        assert condition.op is BinaryOperator.EQ

    def test_cast(self):
        from repro.sql import Cast

        expression = parse_expression("CAST(a AS VARCHAR(10))")
        assert isinstance(expression, Cast)
        assert expression.target_type.startswith("VARCHAR")

    def test_function_call_with_distinct(self):
        expression = parse_expression("COUNT(DISTINCT a)")
        assert isinstance(expression, FunctionCall)
        assert expression.distinct is True

    def test_count_star(self):
        expression = parse_expression("COUNT(*)")
        assert isinstance(expression.args[0], Star)

    def test_string_concat(self):
        expression = parse_expression("a || 'x'")
        assert expression.op is BinaryOperator.CONCAT

    def test_boolean_and_null_literals(self):
        assert parse_expression("TRUE").value is True
        assert parse_expression("FALSE").value is False
        assert parse_expression("NULL").value is None

    def test_negative_number(self):
        from repro.sql import UnaryOp

        assert isinstance(parse_expression("-5"), UnaryOp)


class TestSubqueries:
    def test_in_subquery(self):
        select = parse_select("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
        assert isinstance(select.where, InSubquery)

    def test_exists(self):
        select = parse_select("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)")
        assert isinstance(select.where, Exists)

    def test_not_exists(self):
        select = parse_select("SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u)")
        assert select.where.negated is True

    def test_scalar_subquery_in_select_list(self):
        select = parse_select("SELECT (SELECT MAX(b) FROM u), a FROM t")
        assert isinstance(select.select_items[0].expression, ScalarSubquery)

    def test_scalar_subquery_comparison(self):
        select = parse_select("SELECT a FROM t WHERE a > (SELECT AVG(a) FROM t)")
        assert isinstance(select.where.right, ScalarSubquery)


class TestCTEsAndSetOps:
    def test_single_cte(self):
        select = parse_select("WITH x AS (SELECT a FROM t) SELECT * FROM x")
        assert len(select.ctes) == 1
        assert select.ctes[0].name == "x"

    def test_multiple_ctes(self):
        select = parse_select(
            "WITH x AS (SELECT a FROM t), y AS (SELECT b FROM u) SELECT * FROM x JOIN y ON x.a = y.b"
        )
        assert [cte.name for cte in select.ctes] == ["x", "y"]

    def test_cte_column_names(self):
        select = parse_select("WITH x (col1, col2) AS (SELECT a, b FROM t) SELECT * FROM x")
        assert select.ctes[0].column_names == ["col1", "col2"]

    def test_union(self):
        select = parse_select("SELECT a FROM t UNION SELECT b FROM u")
        assert select.set_operator is SetOperator.UNION

    def test_union_all(self):
        select = parse_select("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert select.set_operator is SetOperator.UNION_ALL

    def test_intersect_and_except(self):
        assert parse_select("SELECT a FROM t INTERSECT SELECT b FROM u").set_operator is SetOperator.INTERSECT
        assert parse_select("SELECT a FROM t EXCEPT SELECT b FROM u").set_operator is SetOperator.EXCEPT

    def test_order_limit_after_union_apply_to_whole(self):
        select = parse_select("SELECT a FROM t UNION SELECT b FROM u ORDER BY a LIMIT 3")
        assert select.limit == 3
        assert select.order_by
        assert select.set_right.limit is None
        assert not select.set_right.order_by


class TestDDLAndDML:
    def test_create_table(self):
        statement = parse(
            "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(50) NOT NULL, score REAL DEFAULT 0)"
        )
        assert isinstance(statement, CreateTable)
        assert statement.columns[0].primary_key is True
        assert statement.columns[1].not_null is True
        assert statement.columns[2].default is not None

    def test_create_table_table_level_pk_and_fk(self):
        statement = parse(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a), FOREIGN KEY (b) REFERENCES u (id))"
        )
        assert statement.primary_key == ["a"]
        assert statement.foreign_keys[0][1] == "u"

    def test_create_table_if_not_exists(self):
        statement = parse("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert statement.if_not_exists is True

    def test_column_level_references(self):
        statement = parse("CREATE TABLE t (a INT REFERENCES u (id))")
        assert statement.columns[0].references == ("u", "id")

    def test_insert(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, Insert)
        assert statement.columns == ["a", "b"]
        assert len(statement.rows) == 2

    def test_insert_without_columns(self):
        statement = parse("INSERT INTO t VALUES (1, 2)")
        assert statement.columns == []

    def test_parse_many(self):
        statements = parse_many("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t")
        assert len(statements) == 3


class TestParseErrors:
    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t extra garbage here")

    def test_missing_from_table_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM")

    def test_unbalanced_parenthesis_raises(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t WHERE (a = 1")

    def test_empty_statement_raises(self):
        with pytest.raises(ParseError):
            parse_expression("")

    def test_parse_select_rejects_ddl(self):
        with pytest.raises(ParseError):
            parse_select("CREATE TABLE t (a INT)")

    def test_unknown_statement_start(self):
        with pytest.raises(ParseError):
            parse("UPSERT INTO t VALUES (1)")
