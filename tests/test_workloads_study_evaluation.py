"""Tests for workload generation, the simulated user study, Figure 1 harness and reporting."""

import pytest

from repro.evaluation import (
    GENERAL_MODELS,
    SimulatedText2SQLModel,
    best_model_for,
    evaluate_model_on_workload,
    run_figure1,
)
from repro.metrics import profile_query_set
from repro.reporting import (
    format_table,
    render_figure1,
    render_figure4,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.schema import profile_database
from repro.sql import parse_select
from repro.study import (
    CONDITION_ORDER,
    Condition,
    StudyRunner,
    accuracy_table,
    assign_conditions,
    backtranslation_figure,
    latency_table,
    make_participants,
)
from repro.workloads import (
    BENCHMARK_NAMES,
    beaver_spec,
    build_benchmark,
    spider_spec,
)


class TestWorkloadGeneration:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            build_benchmark("NotABenchmark")

    def test_benchmark_names(self):
        assert BENCHMARK_NAMES == ("Spider", "Bird", "Fiben", "Beaver")

    def test_specs_reflect_paper_scale_relations(self):
        beaver = beaver_spec()
        spider = spider_spec()
        assert beaver.table_count > spider.table_count
        assert beaver.columns_per_table_min > spider.columns_per_table_min
        assert beaver.null_rate > spider.null_rate
        assert beaver.column_name_duplication > spider.column_name_duplication

    def test_generated_queries_parse_and_execute(self, tiny_spider):
        assert len(tiny_spider.queries) == 10
        for query in tiny_spider.queries:
            parse_select(query.sql)
            tiny_spider.database.execute(query.sql)

    def test_queries_have_gold_nl_and_tables(self, tiny_spider):
        for query in tiny_spider.queries:
            assert query.gold_nl
            assert query.tables
            assert query.dataset == "Spider"

    def test_generation_is_deterministic(self):
        first = build_benchmark("Spider", seed=5, row_scale=0.002, query_count=5)
        second = build_benchmark("Spider", seed=5, row_scale=0.002, query_count=5)
        assert [q.sql for q in first.queries] == [q.sql for q in second.queries]

    def test_different_seeds_differ(self):
        first = build_benchmark("Spider", seed=5, row_scale=0.002, query_count=5)
        second = build_benchmark("Spider", seed=6, row_scale=0.002, query_count=5)
        assert [q.sql for q in first.queries] != [q.sql for q in second.queries]

    def test_beaver_is_more_complex_than_spider(self, tiny_spider, tiny_beaver):
        spider_profile = profile_query_set("Spider", tiny_spider.query_sql).averages
        beaver_profile = profile_query_set("Beaver", tiny_beaver.query_sql).averages
        assert beaver_profile["tokens"] > spider_profile["tokens"]
        assert beaver_profile["tables"] > spider_profile["tables"]
        assert beaver_profile["aggregations"] > spider_profile["aggregations"]

    def test_beaver_data_profile_vs_spider(self, tiny_spider, tiny_beaver):
        spider_data = profile_database(tiny_spider.database)
        beaver_data = profile_database(tiny_beaver.database)
        assert beaver_data.columns_per_table > spider_data.columns_per_table
        assert beaver_data.tables_per_db > spider_data.tables_per_db
        assert beaver_data.sparsity > spider_data.sparsity
        assert beaver_data.uniqueness < spider_data.uniqueness

    def test_sample_queries_deterministic(self, tiny_spider):
        assert [q.query_id for q in tiny_spider.sample_queries(3, seed=1)] == [
            q.query_id for q in tiny_spider.sample_queries(3, seed=1)
        ]


class TestStudy:
    def test_participants_are_balanced(self):
        participants = make_participants(18, seed=0)
        advanced = [p for p in participants if p.is_advanced]
        assert len(participants) == 18
        assert len(advanced) == 9

    def test_assignment_counterbalanced(self):
        participants = make_participants(18, seed=0)
        assignment = assign_conditions(participants)
        for condition in CONDITION_ORDER:
            members = [pid for pid, c in assignment.items() if c is condition]
            assert len(members) == 6

    def test_study_produces_tables_and_figure(self, tiny_beaver, tiny_bird):
        runner = StudyRunner(
            tiny_beaver, tiny_bird, participant_count=6, queries_per_dataset=3, seed=1
        )
        result = runner.run()
        assert len(result.annotations) == 6 * 6  # 6 participants x 6 queries

        accuracy = accuracy_table(result)
        latency = latency_table(result)
        assert set(accuracy.per_dataset) == {"Beaver", "Bird"}
        # Latency ordering: Manual slowest, BenchPress fastest overall.
        assert latency.total[Condition.MANUAL] > latency.total[Condition.VANILLA_LLM]
        assert latency.total[Condition.MANUAL] > latency.total[Condition.BENCHPRESS]
        # Accuracy ordering: BenchPress at least as good as Manual overall.
        assert accuracy.overall[Condition.BENCHPRESS] >= accuracy.overall[Condition.MANUAL]

        figure = backtranslation_figure(
            result, {"Beaver": tiny_beaver, "Bird": tiny_bird}, max_per_condition=4
        )
        for condition in CONDITION_ORDER:
            assert sum(figure.distribution[condition].values()) <= 4
            assert set(figure.distribution[condition]) == {1, 2, 3, 4, 5}

    def test_study_requires_enough_participants(self, tiny_beaver, tiny_bird):
        from repro.errors import StudyError

        with pytest.raises(StudyError):
            StudyRunner(tiny_beaver, tiny_bird, participant_count=2)


class TestEvaluationHarness:
    def test_best_model_mapping(self):
        assert best_model_for("Spider") == "miniSeek"
        assert best_model_for("beaver") == "contextModel"
        assert best_model_for("unknown") == "GPT-4o"

    def test_model_prediction_and_accuracy(self, tiny_spider):
        model = SimulatedText2SQLModel.for_workload("GPT-4o", tiny_spider)
        score = evaluate_model_on_workload(model, tiny_spider, max_queries=5)
        assert 0.0 <= score.accuracy <= 1.0
        assert score.evaluated_queries > 0

    def test_comprehension_decreases_with_complexity(self, tiny_spider, tiny_beaver):
        model_public = SimulatedText2SQLModel.for_workload("GPT-4o", tiny_spider)
        model_enterprise = SimulatedText2SQLModel.for_workload("GPT-4o", tiny_beaver)
        simple = model_public.comprehension_for(tiny_spider.queries[0].sql)
        complex_scores = [
            model_enterprise.comprehension_for(query.sql) for query in tiny_beaver.queries
        ]
        assert simple > sum(complex_scores) / len(complex_scores)

    def test_run_figure1_structure(self, tiny_spider, tiny_beaver):
        result = run_figure1(
            {"Spider": tiny_spider, "Beaver": tiny_beaver},
            models=("GPT-4o",),
            include_best_models=False,
            max_queries=5,
        )
        series = result.series("GPT-4o")
        assert set(series) == {"Spider", "Beaver"}
        assert result.accuracy("GPT-4o", "Spider") == series["Spider"]
        with pytest.raises(KeyError):
            result.accuracy("GPT-4o", "Fiben")
        assert isinstance(result.enterprise_gap("GPT-4o"), float)

    def test_general_models_defined(self):
        assert "GPT-4o" in GENERAL_MODELS


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]], title="T")
        assert text.startswith("T\n")
        assert "333" in text

    def test_render_table1_and_2(self, tiny_spider, tiny_beaver):
        from repro.metrics import build_table1, profile_databases, build_table2

        profiles = {
            "Beaver": profile_query_set("Beaver", tiny_beaver.query_sql),
            "Spider": profile_query_set("Spider", tiny_spider.query_sql),
        }
        rows = build_table1(profiles, "Beaver")
        text = render_table1("Beaver", profiles["Beaver"].averages, rows)
        assert "Table 1" in text and "Spider" in text

        data_profiles = profile_databases(
            {"Beaver": tiny_beaver.database, "Spider": tiny_spider.database}
        )
        text2 = render_table2("Beaver", data_profiles["Beaver"].as_dict(), build_table2(data_profiles, "Beaver"))
        assert "Table 2" in text2 and "Uniqueness" in text2

    def test_render_study_tables_and_figures(self, tiny_beaver, tiny_bird):
        runner = StudyRunner(tiny_beaver, tiny_bird, participant_count=3, queries_per_dataset=2, seed=0)
        result = runner.run()
        accuracy_text = render_table3(accuracy_table(result))
        latency_text = render_table4(latency_table(result))
        assert "BenchPress" in accuracy_text and "Manual" in accuracy_text
        assert "min" in latency_text
        figure = backtranslation_figure(result, {"Beaver": tiny_beaver, "Bird": tiny_bird},
                                        max_per_condition=2)
        assert "level 5" in render_figure4(figure)

    def test_render_figure1(self):
        text = render_figure1(
            {"GPT-4o": {"Spider": 0.9, "Beaver": 0.1}}, best_models={"Spider": "miniSeek"}
        )
        assert "Figure 1" in text and "miniSeek" in text
