"""Deterministic chaos harness: seeded fault schedules over the durable service.

One :class:`ChaosSchedule` — derived entirely from an integer seed — decides
every fault in a scenario up front:

* **LLM failures** (:class:`ChaosLLM`): transient errors injected per call
  from a finite budget.  The schedule never fails two consecutive calls, so
  a retry policy with ``max_attempts >= 2`` always heals within one logical
  call — chaos exercises the retry / breaker / deferral ladder without ever
  pushing a job into quarantine (which would legitimately change the final
  state and void the bit-identical invariant).
* **Journal faults** (:class:`ChaosJournal`): at chosen global append
  indices, either a simulated process crash (optionally tearing a prefix of
  the record's bytes onto disk first) or an OS-level disk fault
  (:class:`~repro.errors.DiskFaultError`, e.g. ENOSPC) that flips the
  service into degraded mode.
* **Expired-deadline drains**: a few drain iterations run with an
  already-expired deadline, forcing the whole round to defer — the
  deterministic extreme of the deadline-budget path.

:func:`run_chaos_scenario` drives a fixed two-project workload through the
schedule — drain, crash, recover, resubmit lost submits, drain again — until
every job completes, checking three invariants along the way:

1. **No committed record is ever lost**: the journal's valid event prefix
   only grows across incarnations.
2. **Deferred jobs eventually drain**: the scenario terminates with an empty
   queue, zero quarantined jobs, and every expected annotation present.
3. **Results are bit-identical to a fault-free run**: per-project
   ``(sql, nl, accepted, candidates)`` sequences match the reference
   exactly, regardless of how often waves were deferred, crashed or retried.
"""

from __future__ import annotations

import errno as errno_module
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import AnnotationService, TaskConfig
from repro.core.journal import EventJournal
from repro.errors import DegradedModeError, DiskFaultError, TransientLLMError
from repro.llm.base import GenerationResult, LLMClient
from repro.llm.prompts import Prompt
from repro.llm.simulated import SimulatedLLM

from tests.faults import InjectedCrash, encode_record
from tests.test_recovery import QUERIES, make_schema

PROJECTS = ("alpha", "beta")

#: Fault-injection ceilings per scenario.  All finite, so every schedule is
#: guaranteed to run out of faults and let the workload converge.
MAX_JOURNAL_FAULTS = 4
LLM_FAILURE_BUDGET = 10
MAX_EXPIRED_DEADLINE_DRAINS = 3

#: Convergence bounds for the drive loop (far above what any schedule needs).
MAX_INCARNATIONS = 12
MAX_DRAINS_PER_INCARNATION = 30


def chaos_config() -> TaskConfig:
    """The project configuration every chaos scenario runs under.

    ``max_attempts=2`` + the schedule's no-two-consecutive-failures rule mean
    retries always heal; the tight breaker still trips on 50%-failure windows
    so deferral gets exercised, and recovers fast enough to keep scenarios
    quick.
    """
    return TaskConfig(
        batch_size=4,
        llm_max_attempts=2,
        llm_retry_base_delay=0.0,
        breaker_enabled=True,
        breaker_window=4,
        breaker_failure_rate=0.5,
        breaker_min_calls=2,
        breaker_recovery_s=0.02,
        breaker_probes=1,
    )


class ChaosSchedule:
    """Every fault decision for one scenario, pre-derived from a seed."""

    def __init__(self, seed: int, journal_faults: bool = True) -> None:
        self.seed = seed
        rng = random.Random(seed)
        #: global append index -> ("crash", torn_bytes|None) | ("disk", None)
        self.journal_faults: dict[int, tuple[str, int | None]] = {}
        if journal_faults:
            count = rng.randint(1, MAX_JOURNAL_FAULTS)
            for point in rng.sample(range(3, 40), count):
                kind = rng.choice(["crash", "torn", "disk"])
                torn = rng.randint(1, 24) if kind == "torn" else None
                self.journal_faults[point] = (
                    ("disk", None) if kind == "disk" else ("crash", torn)
                )
        self.append_counter = 0
        #: Drain iteration indices forced to run with an expired deadline.
        self.expired_deadline_drains = set(
            rng.sample(range(1, 12), rng.randint(0, MAX_EXPIRED_DEADLINE_DRAINS))
        )
        self._llm_rng = random.Random(seed + 0x5EED)
        self.llm_failures_left = LLM_FAILURE_BUDGET
        self.llm_calls = 0
        self.llm_failures_injected = 0
        self._last_call_failed = False

    def llm_should_fail(self) -> bool:
        """Deterministic per-call failure decision (never twice in a row)."""
        self.llm_calls += 1
        if self._last_call_failed or self.llm_failures_left <= 0:
            self._last_call_failed = False
            self._llm_rng.random()  # keep the draw sequence aligned
            return False
        if self._llm_rng.random() < 0.3:
            self.llm_failures_left -= 1
            self.llm_failures_injected += 1
            self._last_call_failed = True
            return True
        self._last_call_failed = False
        return False

    def next_journal_fault(self) -> tuple[str, int | None] | None:
        """The fault (if any) scheduled for the next global append."""
        self.append_counter += 1
        return self.journal_faults.pop(self.append_counter, None)


class ChaosLLM(LLMClient):
    """Client wrapper that fails calls when the shared schedule says so."""

    def __init__(self, inner: LLMClient, schedule: ChaosSchedule) -> None:
        self.inner = inner
        self.name = inner.name
        self.schedule = schedule

    @property
    def example_content_sensitive(self) -> bool:  # type: ignore[override]
        return self.inner.example_content_sensitive

    def _maybe_fail(self) -> None:
        if self.schedule.llm_should_fail():
            raise TransientLLMError(
                f"chaos: injected LLM failure (call #{self.schedule.llm_calls})"
            )

    def generate(self, prompt: Prompt) -> GenerationResult:
        self._maybe_fail()
        return self.inner.generate(prompt)

    def generate_batch(self, prompts: list[Prompt]) -> list[GenerationResult]:
        self._maybe_fail()
        return self.inner.generate_batch(prompts)

    def backtranslate(self, description: str, schema_text: str = "") -> str | None:
        return self.inner.backtranslate(description, schema_text)


class ChaosJournal(EventJournal):
    """Journal that consults the schedule before every append.

    The schedule's append counter is *global across incarnations* — a
    recovered service keeps consuming the same fault sequence, so one seed
    fully determines where every crash and disk fault lands in the scenario.
    Surviving appends are flushed through to the OS, pinning the richest
    durable prefix recovery can face (matching
    :class:`tests.faults.CrashingJournal`).
    """

    def __init__(self, path: str | Path, schedule: ChaosSchedule) -> None:
        super().__init__(path)
        self.schedule = schedule

    def append(self, event_type: str, payload: dict) -> int:
        with self._lock:
            fault = self.schedule.next_journal_fault()
            if fault is not None:
                kind, torn_bytes = fault
                if kind == "disk":
                    raise DiskFaultError(
                        "chaos: injected disk fault (ENOSPC) at append "
                        f"#{self.schedule.append_counter}",
                        errno_value=errno_module.ENOSPC,
                    )
                if torn_bytes is not None:
                    record = encode_record(event_type, payload)
                    self._handle.write(record[: min(torn_bytes, len(record) - 1)])
                    self._handle.flush()
                raise InjectedCrash(
                    f"chaos: injected crash at append #{self.schedule.append_counter} "
                    f"({event_type}, torn_bytes={torn_bytes})"
                )
            offset = super().append(event_type, payload)
            self._handle.flush()
            return offset


@dataclass
class ChaosResult:
    """What one scenario went through on its way to convergence."""

    seed: int
    incarnations: int = 1
    drains: int = 0
    crashes: int = 0
    disk_faults: int = 0
    llm_failures: int = 0
    deferrals: int = 0
    #: Final per-project annotation fingerprints, for reference comparison.
    records: dict[str, list[tuple]] = field(default_factory=dict)


def expected_workload() -> dict[str, list[str]]:
    """The fixed two-project workload every scenario (and reference) runs."""
    return {project: list(QUERIES) for project in PROJECTS}


def record_fingerprints(service: AnnotationService) -> dict[str, list[tuple]]:
    """Per-project ``(sql, nl, accepted, candidates)`` — the bit-identity key."""
    return {
        project: [
            (record.sql, record.nl, record.accepted, tuple(record.candidates))
            for record in service.pipeline(project).annotations
        ]
        for project in service.project_names
    }


def _journal_event_keys(path: Path) -> list[tuple[str, str]]:
    """Stable identity of every committed journal record (for invariant 1)."""
    import json

    return [
        (event.type, json.dumps(event.payload, sort_keys=True))
        for event in EventJournal.scan(path, with_events=True).events
    ]


def _make_service(journal: ChaosJournal, schedule: ChaosSchedule) -> AnnotationService:
    """Recover (or freshly start) a chaos service over an existing journal.

    Mirrors :meth:`AnnotationService.recover`, but keeps the chaos journal
    and wraps every project's client in :class:`ChaosLLM` so the fault
    schedule continues across incarnations.
    """

    def llm_factory(name: str) -> LLMClient:
        return ChaosLLM(
            SimulatedLLM(chaos_config().model_name, schema=make_schema()), schedule
        )

    service = AnnotationService()
    for event in journal.events(0):
        service._replay_event(event, llm_factory=llm_factory)
    service.attach_journal(journal)
    return service


def _resubmit_missing(
    service: AnnotationService, workload: dict[str, list[str]]
) -> None:
    """Re-register / re-submit whatever the journal never saw.

    Submits happen strictly in workload order, so anything missing from the
    journal is a per-project *suffix* — resubmitting in order preserves each
    project's commit order (deferred/pending jobs sit ahead in the queue).
    """
    for project, statements in workload.items():
        if project not in service.project_names:
            service.register_project(
                project,
                make_schema(),
                config=chaos_config(),
                llm=ChaosLLM(
                    SimulatedLLM(chaos_config().model_name, schema=make_schema()),
                    service.journal.schedule,  # type: ignore[union-attr]
                ),
            )
        known = {job.sql for job in service.pending_jobs(project)} | {
            record.sql for record in service.pipeline(project).annotations
        }
        for sql in statements:
            if sql not in known:
                service.submit(sql, project=project)


def run_reference(root: Path) -> dict[str, list[tuple]]:
    """The fault-free run every chaos scenario must reproduce bit-for-bit."""
    schedule = ChaosSchedule(seed=0, journal_faults=False)
    schedule.llm_failures_left = 0  # no LLM faults either
    journal = ChaosJournal(root / "journal.bin", schedule)
    service = _make_service(journal, schedule)
    _resubmit_missing(service, expected_workload())
    service.drain()
    assert service.pending_count == 0 and not service.quarantine
    fingerprints = record_fingerprints(service)
    service.close()
    return fingerprints


def run_chaos_scenario(seed: int, root: Path) -> ChaosResult:
    """Drive the workload through one seeded fault schedule to convergence.

    Raises ``AssertionError`` as soon as any invariant breaks; returns the
    scenario's fault/recovery accounting otherwise.
    """
    schedule = ChaosSchedule(seed)
    workload = expected_workload()
    journal_path = root / "journal.bin"
    result = ChaosResult(seed=seed)
    committed_prefix: list[tuple[str, str]] = []

    def check_journal_monotonic() -> None:
        nonlocal committed_prefix
        events = _journal_event_keys(journal_path)
        assert events[: len(committed_prefix)] == committed_prefix, (
            f"seed {seed}: committed journal records were lost or rewritten"
        )
        committed_prefix = events

    service = _make_service(ChaosJournal(journal_path, schedule), schedule)
    for incarnation in range(MAX_INCARNATIONS):
        alive = True
        try:
            _resubmit_missing(service, workload)
            for drain_index in range(MAX_DRAINS_PER_INCARNATION):
                if service.pending_count == 0:
                    break
                deadline = (
                    0.0 if result.drains in schedule.expired_deadline_drains else None
                )
                result.drains += 1
                service.drain(deadline=deadline)
                report = service.last_drain_report
                assert report is not None
                result.deferrals += report.deferred
                if service.degraded:
                    result.disk_faults += 1
                    alive = False
                    break
                if report.completed == 0 and report.deferred > 0:
                    # Breaker open or expired deadline: give the breaker its
                    # recovery window before trying again.
                    time.sleep(chaos_config().breaker_recovery_s + 0.005)
            else:
                raise AssertionError(
                    f"seed {seed}: drain loop failed to converge in "
                    f"{MAX_DRAINS_PER_INCARNATION} drains"
                )
        except InjectedCrash:
            result.crashes += 1
            alive = False
        except DegradedModeError:
            result.disk_faults += 1
            alive = False

        if alive and service.pending_count == 0:
            break
        # The incarnation died (crash or degraded): verify nothing committed
        # was lost, then recover a fresh service from the journal.
        check_journal_monotonic()
        result.incarnations += 1
        service = _make_service(ChaosJournal(journal_path, schedule), schedule)
    else:
        raise AssertionError(
            f"seed {seed}: scenario failed to converge in "
            f"{MAX_INCARNATIONS} incarnations"
        )

    # Invariant 2: everything drained, nothing quarantined.
    assert service.pending_count == 0, f"seed {seed}: queue did not empty"
    assert not service.quarantine and service.stats.failed == 0, (
        f"seed {seed}: chaos pushed jobs into quarantine"
    )
    for project, statements in workload.items():
        count = len(service.pipeline(project).annotations)
        assert count == len(statements), (
            f"seed {seed}: project {project!r} completed {count}"
            f"/{len(statements)} jobs"
        )
    # Invariant 1, final edition: the journal still holds every committed
    # record, and a cold recovery agrees with the live service.
    service.close()
    check_journal_monotonic()
    recovered = AnnotationService.recover(journal_path)
    result.records = record_fingerprints(recovered)
    assert result.records == record_fingerprints_from_live(service), (
        f"seed {seed}: cold replay disagrees with the live final state"
    )
    recovered.close()
    result.llm_failures = schedule.llm_failures_injected
    return result


def record_fingerprints_from_live(service: AnnotationService) -> dict[str, list[tuple]]:
    """Fingerprints of a (possibly closed) live service — same key as above."""
    return record_fingerprints(service)
