"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenKind


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select From wHeRe")
        assert [t.value for t in tokens] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens)

    def test_identifiers_keep_case(self):
        tokens = tokenize("SELECT MyColumn FROM MyTable")
        assert tokens[1].value == "MyColumn"
        assert tokens[1].kind is TokenKind.IDENTIFIER
        assert tokens[3].value == "MyTable"

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == "42"

    def test_decimal_literal(self):
        token = tokenize("3.14")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == "3.14"

    def test_scientific_notation(self):
        token = tokenize("1.5e10")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == "1.5e10"

    def test_string_literal(self):
        token = tokenize("'hello world'")[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello world"

    def test_string_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_double_quoted_identifier(self):
        token = tokenize('"Weird Name"')[0]
        assert token.kind is TokenKind.QUOTED_IDENTIFIER
        assert token.value == "Weird Name"

    def test_backtick_identifier(self):
        token = tokenize("`order`")[0]
        assert token.kind is TokenKind.QUOTED_IDENTIFIER
        assert token.value == "order"

    def test_punctuation_and_operators(self):
        tokens = tokenize("(a, b) = c.d;")
        kinds = [t.kind for t in tokens]
        assert TokenKind.PUNCTUATION in kinds
        assert TokenKind.OPERATOR in kinds

    def test_multi_char_operators(self):
        values = [t.value for t in tokenize("a <> b >= c <= d != e || f")]
        assert "<>" in values
        assert ">=" in values
        assert "<=" in values
        assert "||" in values
        # != is normalised to <>
        assert values.count("<>") == 2

    def test_named_parameter(self):
        token = tokenize(":limit")[0]
        assert token.kind is TokenKind.PARAMETER
        assert token.value == ":limit"

    def test_positional_parameter(self):
        token = tokenize("?")[0]
        assert token.kind is TokenKind.PARAMETER


class TestCommentsAndWhitespace:
    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n+ 2")
        assert [t.value for t in tokens] == ["SELECT", "1", "+", "2"]

    def test_block_comment_skipped(self):
        tokens = tokenize("SELECT /* a block\ncomment */ 1")
        assert [t.value for t in tokens] == ["SELECT", "1"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("SELECT /* oops")

    def test_whitespace_only_input(self):
        assert tokenize("   \n\t  ") == []

    def test_line_numbers_tracked(self):
        tokens = tokenize("SELECT\n1")
        assert tokens[0].line == 1
        assert tokens[1].line == 2


class TestLexErrors:
    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("SELECT 'oops")

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(LexError):
            tokenize('SELECT "oops')

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("SELECT @")

    def test_malformed_number_raises(self):
        with pytest.raises(LexError):
            tokenize("SELECT 1.2.3")


class TestTokenHelpers:
    def test_is_keyword(self):
        token = Token(TokenKind.KEYWORD, "SELECT")
        assert token.is_keyword("SELECT")
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("FROM")

    def test_is_punctuation(self):
        token = Token(TokenKind.PUNCTUATION, "(")
        assert token.is_punctuation("(")
        assert not token.is_punctuation(")")

    def test_is_operator(self):
        token = Token(TokenKind.OPERATOR, "=")
        assert token.is_operator("=", "<>")
        assert not token.is_operator("<")
