"""Tests for the concurrent multi-tenant drain: sequential/concurrent parity,
the round-based wave scheduler, backpressure admission control, per-tenant
accounting, retry-jitter salting, thread stress under flaky clients, and
crash recovery mid-concurrent-drain."""

from __future__ import annotations

import pytest

from repro.core import (
    AnnotationService,
    TaskConfig,
    WaveScheduler,
)
from repro.errors import BackpressureError, PipelineError
from repro.llm import SimulatedLLM
from repro.llm.base import RetryPolicy, _join_salt
from repro.schema import ColumnSchema, DatabaseSchema, ForeignKey, TableSchema

from tests.faults import CrashingJournal, FlakyLLM, InjectedCrash

QUERIES = [
    "SELECT name, salary FROM employees WHERE salary > 50000",
    "SELECT dept_name, budget FROM departments ORDER BY budget DESC",
    "SELECT e.name FROM employees e JOIN departments d ON e.dept_id = d.dept_id "
    "WHERE d.dept_name = 'Sales'",
    "SELECT name FROM employees WHERE dept_id IN "
    "(SELECT dept_id FROM departments WHERE budget > 100000)",
    "SELECT COUNT(*), dept_id FROM employees GROUP BY dept_id",
    "SELECT name FROM employees WHERE hire_date > '2020-01-01'",
    "SELECT AVG(salary) FROM employees",
    "SELECT dept_name FROM departments WHERE budget < 50000",
]

PROJECTS = ["alpha", "beta", "gamma", "delta"]


def make_schema() -> DatabaseSchema:
    return DatabaseSchema(
        name="hr",
        tables=[
            TableSchema(
                name="employees",
                columns=[
                    ColumnSchema("emp_id", "INT", primary_key=True, nullable=False),
                    ColumnSchema("name", "TEXT"),
                    ColumnSchema("salary", "REAL"),
                    ColumnSchema("dept_id", "INT"),
                    ColumnSchema("hire_date", "DATE"),
                ],
                foreign_keys=[ForeignKey("dept_id", "departments", "dept_id")],
            ),
            TableSchema(
                name="departments",
                columns=[
                    ColumnSchema("dept_id", "INT", primary_key=True, nullable=False),
                    ColumnSchema("dept_name", "TEXT"),
                    ColumnSchema("budget", "REAL"),
                ],
            ),
        ],
    )


def record_key(record):
    return (record.query_id, record.nl, record.accepted, tuple(record.candidates))


def completed_keys(completed):
    """Order-sensitive fingerprint of one drain's result list."""
    return [
        (
            item.job.project,
            item.job.job_id,
            None if item.record is None else record_key(item.record),
            item.error,
        )
        for item in completed
    ]


def build_service(
    max_concurrency: int = 1,
    projects: list[str] = PROJECTS,
    config: TaskConfig | None = None,
    llm_factory=None,
) -> AnnotationService:
    service = AnnotationService(max_concurrency=max_concurrency)
    for name in projects:
        llm = llm_factory(name) if llm_factory is not None else None
        service.register_project(
            name, make_schema(), config=config or TaskConfig(batch_size=3), llm=llm
        )
    return service


def submit_mix(service: AnnotationService, projects: list[str] = PROJECTS) -> None:
    """Interleaved submissions with unequal per-project queue depths."""
    for index, sql in enumerate(QUERIES):
        for project in projects[: 1 + index % len(projects)]:
            service.submit(sql, project=project)


class TestConcurrentParity:
    @pytest.mark.parametrize("concurrency", [2, 4, 8])
    def test_concurrent_drain_matches_sequential(self, concurrency):
        sequential = build_service(max_concurrency=1)
        submit_mix(sequential)
        expected = sequential.drain()

        concurrent = build_service(max_concurrency=concurrency)
        submit_mix(concurrent)
        actual = concurrent.drain()

        assert completed_keys(actual) == completed_keys(expected)
        assert concurrent.stats.completed == sequential.stats.completed
        assert concurrent.stats.waves == sequential.stats.waves
        assert concurrent.stats.batched_queries == sequential.stats.batched_queries
        for name in PROJECTS:
            assert (
                concurrent.pipeline(name).example_count
                == sequential.pipeline(name).example_count
            )
            assert [
                record_key(r) for r in concurrent.pipeline(name).annotations
            ] == [record_key(r) for r in sequential.pipeline(name).annotations]

    def test_drain_concurrency_override(self):
        service = build_service(max_concurrency=1)
        submit_mix(service)
        expected = build_service(max_concurrency=1)
        submit_mix(expected)
        assert completed_keys(service.drain(concurrency=4)) == completed_keys(
            expected.drain()
        )

    def test_single_project_concurrent_drain(self):
        # With one tenant there is nothing to overlap; the concurrent path
        # degenerates to the classic sequential drain.
        service = build_service(max_concurrency=4, projects=["solo"])
        for sql in QUERIES:
            service.submit(sql, project="solo")
        reference = build_service(max_concurrency=1, projects=["solo"])
        for sql in QUERIES:
            reference.submit(sql, project="solo")
        assert completed_keys(service.drain()) == completed_keys(reference.drain())

    def test_repeated_partial_drains_match(self):
        sequential = build_service(max_concurrency=1)
        concurrent = build_service(max_concurrency=4)
        for service in (sequential, concurrent):
            submit_mix(service)
        while sequential.pending_count:
            expected = sequential.drain(max_jobs=5)
            actual = concurrent.drain(max_jobs=5)
            assert completed_keys(actual) == completed_keys(expected)
        assert concurrent.pending_count == 0

    def test_invalid_concurrency_rejected(self):
        service = build_service()
        with pytest.raises(PipelineError):
            service.drain(concurrency=0)
        with pytest.raises(PipelineError):
            AnnotationService(max_concurrency=0)
        with pytest.raises(PipelineError):
            WaveScheduler(max_workers=0)


class TestFaultIsolationConcurrent:
    def test_poisoned_project_does_not_sink_others(self):
        def run(concurrency):
            service = build_service(max_concurrency=concurrency)
            submit_mix(service)
            service.submit("SELECT FROM", project="beta")  # unparseable
            service.submit(QUERIES[0], project="beta")
            return service

        sequential = run(1)
        concurrent = run(4)
        expected = sequential.drain()
        actual = concurrent.drain()
        assert completed_keys(actual) == completed_keys(expected)
        assert len(concurrent.quarantine) == len(sequential.quarantine) == 1
        assert concurrent.quarantine[0].job.project == "beta"
        assert concurrent.stats.failed == 1
        assert concurrent.stats.per_project["beta"].failed == 1

    def test_flaky_llm_thread_stress(self):
        # Repeated concurrent drains with transient failures injected into
        # every tenant's client: the retry discipline must absorb them and
        # the records must match an uninjected sequential run exactly.
        retry_config = TaskConfig(
            batch_size=3, llm_retry_base_delay=0.001, llm_retry_max_delay=0.002
        )

        def flaky_factory(name):
            return FlakyLLM(
                SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2
            )

        reference = build_service(max_concurrency=1, config=retry_config)
        stressed = build_service(
            max_concurrency=4, config=retry_config, llm_factory=flaky_factory
        )
        for round_index in range(3):
            for service in (reference, stressed):
                submit_mix(service)
            expected = reference.drain()
            actual = stressed.drain()
            assert completed_keys(actual) == completed_keys(expected)
        assert stressed.stats.failed == 0
        assert stressed.stats.completed == reference.stats.completed


class TestBackpressure:
    def test_submit_rejected_at_limit(self):
        service = build_service(
            projects=["alpha", "beta"],
            config=TaskConfig(batch_size=3, max_pending_per_project=3),
        )
        for _ in range(3):
            service.submit(QUERIES[0], project="alpha")
        with pytest.raises(BackpressureError):
            service.submit(QUERIES[1], project="alpha")
        # The rejected job was never admitted anywhere.
        assert service.pending_count == 3
        assert service.pending_count_for("alpha") == 3
        assert service.stats.submitted == 3
        # Other tenants are unaffected by alpha's full queue.
        service.submit(QUERIES[0], project="beta")
        # Draining frees the budget.
        service.drain()
        assert service.pending_count_for("alpha") == 0
        service.submit(QUERIES[2], project="alpha")

    def test_rejected_submit_not_journaled(self, tmp_path):
        from repro.core import EventJournal

        journal = EventJournal(tmp_path / "journal.bin")
        service = build_service(
            projects=["alpha"],
            config=TaskConfig(max_pending_per_project=1),
        )
        service.attach_journal(journal)
        service.submit(QUERIES[0], project="alpha")
        records_before = journal.record_count
        with pytest.raises(BackpressureError):
            service.submit(QUERIES[1], project="alpha")
        assert journal.record_count == records_before

    def test_zero_limit_disables_backpressure(self):
        service = build_service(projects=["alpha"], config=TaskConfig())
        for _ in range(50):
            service.submit(QUERIES[0], project="alpha")
        assert service.pending_count_for("alpha") == 50


class TestPerTenantStats:
    def test_per_project_breakdown(self):
        service = build_service(max_concurrency=4)
        submit_mix(service)
        per_project_submitted = {
            name: service.pending_count_for(name) for name in PROJECTS
        }
        service.drain()
        for name in PROJECTS:
            slice_ = service.stats.per_project[name]
            assert slice_.submitted == per_project_submitted[name]
            assert slice_.completed == per_project_submitted[name]
            assert slice_.failed == 0
            assert slice_.pending == 0
        assert service.stats.submitted == sum(per_project_submitted.values())
        assert service.stats.completed == service.stats.submitted

    def test_per_project_stats_survive_snapshot_roundtrip(self):
        service = build_service(max_concurrency=4)
        submit_mix(service)
        service.drain()
        clone = AnnotationService()
        clone.restore_state(service.capture_state())
        assert clone.stats.per_project == service.stats.per_project
        assert clone.stats.completed == service.stats.completed


class TestRetrySalting:
    def test_join_salt_composes(self):
        assert _join_salt("", "base") == "base"
        assert _join_salt("alpha", "base") == "alpha|base"

    def test_projects_get_distinct_backoff_schedules(self):
        # Same transient error, same attempt, different tenants: the salted
        # jitter must spread their retries instead of a thundering herd.
        policy = RetryPolicy(base_delay=0.5, max_delay=8.0, jitter=0.5)
        delays_alpha = [
            policy.delay(attempt, salt=_join_salt("alpha", "SELECT 1"))
            for attempt in range(3)
        ]
        delays_beta = [
            policy.delay(attempt, salt=_join_salt("beta", "SELECT 1"))
            for attempt in range(3)
        ]
        assert delays_alpha != delays_beta
        # Determinism: the same tenant re-running the same workload backs
        # off identically.
        assert delays_alpha == [
            policy.delay(attempt, salt=_join_salt("alpha", "SELECT 1"))
            for attempt in range(3)
        ]

    def test_pipeline_salts_with_project_name(self):
        service = build_service(projects=["alpha", "beta"])
        assert service.pipeline("alpha")._retry_salt == "alpha"
        assert service.pipeline("beta")._retry_salt == "beta"


class TestCrashRecoveryConcurrent:
    def _build_durable(self, journal, max_concurrency=1):
        """A journaled two-tenant service with the standard crash workload."""
        service = AnnotationService(max_concurrency=max_concurrency)
        service.attach_journal(journal)
        for name in PROJECTS[:2]:
            service.register_project(
                name, make_schema(), config=TaskConfig(batch_size=3)
            )
        for project in PROJECTS[:2]:
            for sql in QUERIES[:4]:
                service.submit(sql, project=project)
        return service

    def _run_to_completion_sequential(self, tmp_path):
        """Reference: the same workload journaled by an uncrashed run."""
        service = self._build_durable(CrashingJournal(tmp_path / "reference.bin"))
        service.drain()
        return service.capture_state(include_accounting=False)

    @pytest.mark.parametrize("crash_after", [12, 15, 18])
    @pytest.mark.parametrize("torn_bytes", [None, 7])
    def test_crash_mid_concurrent_drain_converges(
        self, tmp_path, crash_after, torn_bytes
    ):
        # 2 PROJECT_REGISTERED + 8 JOB_SUBMITTED events precede the drain, so
        # the chosen crash points all land inside the concurrent drain's
        # ANNOTATION_COMMITTED stream.
        reference_state = self._run_to_completion_sequential(tmp_path)

        path = tmp_path / "crashed.bin"
        journal = CrashingJournal(path, crash_after=crash_after, torn_bytes=torn_bytes)
        service = self._build_durable(journal, max_concurrency=4)
        with pytest.raises(InjectedCrash):
            service.drain()

        recovered = AnnotationService.recover(path)
        # The journaled prefix replays to a strict subset of the work; the
        # lost jobs are still pending and re-draining them (sequentially)
        # must converge on exactly the uncrashed run's state.
        assert recovered.pending_count > 0
        recovered.drain()
        assert recovered.pending_count == 0
        assert (
            recovered.capture_state(include_accounting=False) == reference_state
        )

    def test_crash_then_concurrent_redrain_converges(self, tmp_path):
        reference_state = self._run_to_completion_sequential(tmp_path)
        path = tmp_path / "crashed.bin"
        journal = CrashingJournal(path, crash_after=14)
        service = self._build_durable(journal, max_concurrency=4)
        with pytest.raises(InjectedCrash):
            service.drain()
        recovered = AnnotationService.recover(path, max_concurrency=4)
        recovered.drain()
        assert (
            recovered.capture_state(include_accounting=False) == reference_state
        )
