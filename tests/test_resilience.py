"""Resilience tests: LLM retry/backoff/timeout discipline and the service's
drain fault isolation (quarantine instead of poisoned waves)."""

from __future__ import annotations

import time

import pytest

from repro.core import AnnotationService, TaskConfig
from repro.core.pipeline import AnnotationPipeline
from repro.errors import (
    JournalError,
    LLMTimeoutError,
    PipelineError,
    TransientLLMError,
)
from repro.llm import RetryPolicy, SimulatedLLM, is_transient_error

from tests.faults import FlakyLLM, SlowLLM
from tests.test_recovery import QUERIES, make_schema, semantic_state


def make_pipeline(llm=None, config=None) -> AnnotationPipeline:
    return AnnotationPipeline(
        schema=make_schema(), config=config, llm=llm, dataset_name="hr"
    )


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_delays_are_exponential_capped_and_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert [policy.delay(n) for n in range(4)] == [0.1, 0.2, 0.4, 0.5]
        jittered = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.5)
        for attempt in range(4):
            first = jittered.delay(attempt, salt="query-1")
            assert first == jittered.delay(attempt, salt="query-1")  # deterministic
            raw = min(0.5, 0.1 * 2**attempt)
            assert raw * 0.5 <= first <= raw  # jitter only shaves, never inflates

    def test_transient_classification(self):
        assert is_transient_error(TransientLLMError("overloaded"))
        assert is_transient_error(LLMTimeoutError("deadline"))
        assert is_transient_error(ConnectionError("reset"))
        assert is_transient_error(TimeoutError("socket"))
        tagged = ValueError("rate limited")
        tagged.transient = True
        assert is_transient_error(tagged)
        assert not is_transient_error(ValueError("bad prompt"))

    def test_config_knobs_validate_and_round_trip(self):
        config = TaskConfig(
            llm_max_attempts=4,
            llm_retry_base_delay=0.01,
            llm_retry_max_delay=0.1,
            llm_retry_jitter=0.25,
            llm_call_timeout=1.5,
        )
        config.validate()
        policy = config.retry_policy()
        assert policy == RetryPolicy(
            max_attempts=4, base_delay=0.01, max_delay=0.1, jitter=0.25, call_timeout=1.5
        )
        assert TaskConfig.from_dict(config.to_dict()) == config
        for bad in (
            TaskConfig(llm_max_attempts=0),
            TaskConfig(llm_retry_base_delay=-1),
            TaskConfig(llm_retry_jitter=1.5),
            TaskConfig(llm_call_timeout=0),
        ):
            with pytest.raises(PipelineError):
                bad.validate()


# ----------------------------------------------------------------------
# client-level retries
# ----------------------------------------------------------------------

class TestClientRetries:
    def test_transient_failures_are_retried_to_success(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        pipeline = make_pipeline()  # only for a realistic prompt
        prompt = pipeline.generate_candidates(QUERIES[0]).prompt
        result = llm.generate_with_retry(prompt, policy)
        assert result.candidates
        assert llm.calls == 3 and llm.failures_injected == 2

    def test_exhausted_retries_surface_the_transient_error(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=5)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        with pytest.raises(TransientLLMError):
            llm.generate_with_retry(prompt, RetryPolicy(max_attempts=3, base_delay=0.0))
        assert llm.calls == 3  # stopped at the attempt budget

    def test_terminal_errors_fail_fast(self):
        llm = FlakyLLM(
            SimulatedLLM("gpt-4o", schema=make_schema()),
            fail_times=5,
            error_factory=lambda n: ValueError(f"bad prompt #{n}"),
        )
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        with pytest.raises(ValueError):
            llm.generate_with_retry(prompt, RetryPolicy(max_attempts=3, base_delay=0.0))
        assert llm.calls == 1  # no retry on terminal errors

    def test_no_policy_means_plain_call(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=1)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        with pytest.raises(TransientLLMError):
            llm.generate_with_retry(prompt, None)
        assert llm.calls == 1

    def test_call_timeout_raises_and_is_transient(self):
        llm = SlowLLM(SimulatedLLM("gpt-4o", schema=make_schema()), delay_seconds=0.4)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, call_timeout=0.05)
        started = time.monotonic()
        with pytest.raises(LLMTimeoutError):
            llm.generate_with_retry(prompt, policy)
        # Two attempts, each cut at ~0.05s — nowhere near 2 × 0.4s of sleeping.
        assert time.monotonic() - started < 0.6

    def test_batch_retry_covers_generate_batch(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=1)
        pipeline = make_pipeline()
        prompts = [pipeline.generate_candidates(sql).prompt for sql in QUERIES[:2]]
        results = llm.generate_batch_with_retry(
            prompts, RetryPolicy(max_attempts=2, base_delay=0.0)
        )
        assert len(results) == 2 and llm.failures_injected == 1


# ----------------------------------------------------------------------
# pipeline-level retries
# ----------------------------------------------------------------------

class TestPipelineRetries:
    def test_pipeline_survives_transient_flake(self):
        config = TaskConfig(llm_max_attempts=3, llm_retry_base_delay=0.0)
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        pipeline = make_pipeline(llm=llm, config=config)
        record = pipeline.annotate(QUERIES[0])
        assert record.accepted

    def test_pipeline_without_retries_propagates(self):
        config = TaskConfig(llm_max_attempts=1)
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=1)
        pipeline = make_pipeline(llm=llm, config=config)
        with pytest.raises(TransientLLMError):
            pipeline.annotate(QUERIES[0])

    def test_retried_run_is_bit_identical_to_smooth_run(self):
        config = TaskConfig(llm_max_attempts=3, llm_retry_base_delay=0.0)
        smooth = make_pipeline(config=config)
        flaky = make_pipeline(
            llm=FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2),
            config=config,
        )
        smooth_records = smooth.annotate_many(QUERIES)
        flaky_records = flaky.annotate_many(QUERIES)
        assert flaky_records == smooth_records


# ----------------------------------------------------------------------
# drain fault isolation
# ----------------------------------------------------------------------

class TestDrainIsolation:
    POISON = "SELEC name FRM employees"  # parses at submit, dies at annotate

    def test_poisoned_job_is_quarantined_not_fatal(self):
        service = AnnotationService()
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr")
        service.submit(self.POISON, project="hr")
        service.submit(QUERIES[1], project="hr")
        completed = service.drain()

        assert len(completed) == 3
        failures = [item for item in completed if item.failed]
        assert len(failures) == 1
        assert failures[0].job.sql == self.POISON
        assert failures[0].record is None and failures[0].error
        assert service.quarantine == failures
        assert service.stats.failed == 1
        assert service.stats.completed == 2
        assert service.stats.pending == 0
        # the healthy jobs produced real annotations
        healthy = [item for item in completed if not item.failed]
        assert all(item.record.accepted for item in healthy)
        assert service.pipeline("hr").example_count == 2

    def test_isolated_records_match_a_poison_free_run(self):
        poisoned = AnnotationService()
        poisoned.register_project("hr", make_schema())
        for sql in (QUERIES[0], self.POISON, QUERIES[1], QUERIES[2]):
            poisoned.submit(sql, project="hr")
        poisoned_records = [
            item.record for item in poisoned.drain() if not item.failed
        ]

        clean = AnnotationService()
        clean.register_project("hr", make_schema())
        for sql in (QUERIES[0], QUERIES[1], QUERIES[2]):
            clean.submit(sql, project="hr")
        clean_records = [item.record for item in clean.drain()]

        # Same annotations (ignoring auto query-id numbering, which counts
        # every produced record): SQL, NL and acceptance all line up.
        assert [(r.sql, r.nl, r.accepted) for r in poisoned_records] == [
            (r.sql, r.nl, r.accepted) for r in clean_records
        ]

    def test_quarantine_survives_recovery(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc")
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr")
        service.submit(self.POISON, project="hr")
        service.drain()
        assert service.stats.failed == 1
        live = semantic_state(service)
        assert live["quarantine"]
        service.close()

        recovered = AnnotationService.open_durable(tmp_path / "svc")
        assert semantic_state(recovered) == live
        assert recovered.stats.failed == 1
        assert recovered.stats.pending == 0
        recovered.close()

    def test_flaky_batch_call_heals_within_the_drain(self):
        config = TaskConfig(llm_max_attempts=3, llm_retry_base_delay=0.0)
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        service = AnnotationService()
        service.register_project("hr", make_schema(), config=config, llm=llm)
        service.submit_many(QUERIES, project="hr")
        completed = service.drain()
        assert len(completed) == len(QUERIES)
        assert not any(item.failed for item in completed)
        assert service.stats.failed == 0

    def test_journal_errors_are_never_swallowed(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc")
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr")
        service.journal.close()  # durability lost mid-flight
        with pytest.raises(JournalError):
            service.drain()
