"""Resilience tests: LLM retry/backoff/timeout discipline and the service's
drain fault isolation (quarantine instead of poisoned waves)."""

from __future__ import annotations

import time

import pytest

from repro.core import AnnotationService, TaskConfig
from repro.core.pipeline import AnnotationPipeline
from repro.errors import (
    BackpressureError,
    DeadlineExceededError,
    DegradedModeError,
    JournalError,
    LLMTimeoutError,
    PipelineError,
    TransientLLMError,
)
from repro.llm import RetryPolicy, SimulatedLLM, is_transient_error
from repro.llm.base import LLMClient
from repro.llm.resilience import CircuitBreaker, Deadline, HedgePolicy
from repro.obs import Telemetry

from tests.faults import DiskFaultJournal, FlakyLLM, SlowLLM
from tests.test_recovery import QUERIES, make_schema, semantic_state


def make_pipeline(llm=None, config=None) -> AnnotationPipeline:
    return AnnotationPipeline(
        schema=make_schema(), config=config, llm=llm, dataset_name="hr"
    )


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_delays_are_exponential_capped_and_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert [policy.delay(n) for n in range(4)] == [0.1, 0.2, 0.4, 0.5]
        jittered = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.5)
        for attempt in range(4):
            first = jittered.delay(attempt, salt="query-1")
            assert first == jittered.delay(attempt, salt="query-1")  # deterministic
            raw = min(0.5, 0.1 * 2**attempt)
            assert raw * 0.5 <= first <= raw  # jitter only shaves, never inflates

    def test_transient_classification(self):
        assert is_transient_error(TransientLLMError("overloaded"))
        assert is_transient_error(LLMTimeoutError("deadline"))
        assert is_transient_error(ConnectionError("reset"))
        assert is_transient_error(TimeoutError("socket"))
        tagged = ValueError("rate limited")
        tagged.transient = True
        assert is_transient_error(tagged)
        assert not is_transient_error(ValueError("bad prompt"))

    def test_config_knobs_validate_and_round_trip(self):
        config = TaskConfig(
            llm_max_attempts=4,
            llm_retry_base_delay=0.01,
            llm_retry_max_delay=0.1,
            llm_retry_jitter=0.25,
            llm_call_timeout=1.5,
        )
        config.validate()
        policy = config.retry_policy()
        assert policy == RetryPolicy(
            max_attempts=4, base_delay=0.01, max_delay=0.1, jitter=0.25, call_timeout=1.5
        )
        assert TaskConfig.from_dict(config.to_dict()) == config
        for bad in (
            TaskConfig(llm_max_attempts=0),
            TaskConfig(llm_retry_base_delay=-1),
            TaskConfig(llm_retry_jitter=1.5),
            TaskConfig(llm_call_timeout=0),
        ):
            with pytest.raises(PipelineError):
                bad.validate()


# ----------------------------------------------------------------------
# client-level retries
# ----------------------------------------------------------------------

class TestClientRetries:
    def test_transient_failures_are_retried_to_success(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)
        pipeline = make_pipeline()  # only for a realistic prompt
        prompt = pipeline.generate_candidates(QUERIES[0]).prompt
        result = llm.generate_with_retry(prompt, policy)
        assert result.candidates
        assert llm.calls == 3 and llm.failures_injected == 2

    def test_exhausted_retries_surface_the_transient_error(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=5)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        with pytest.raises(TransientLLMError):
            llm.generate_with_retry(prompt, RetryPolicy(max_attempts=3, base_delay=0.0))
        assert llm.calls == 3  # stopped at the attempt budget

    def test_terminal_errors_fail_fast(self):
        llm = FlakyLLM(
            SimulatedLLM("gpt-4o", schema=make_schema()),
            fail_times=5,
            error_factory=lambda n: ValueError(f"bad prompt #{n}"),
        )
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        with pytest.raises(ValueError):
            llm.generate_with_retry(prompt, RetryPolicy(max_attempts=3, base_delay=0.0))
        assert llm.calls == 1  # no retry on terminal errors

    def test_no_policy_means_plain_call(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=1)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        with pytest.raises(TransientLLMError):
            llm.generate_with_retry(prompt, None)
        assert llm.calls == 1

    def test_call_timeout_raises_and_is_transient(self):
        llm = SlowLLM(SimulatedLLM("gpt-4o", schema=make_schema()), delay_seconds=0.4)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, call_timeout=0.05)
        started = time.monotonic()
        with pytest.raises(LLMTimeoutError):
            llm.generate_with_retry(prompt, policy)
        # Two attempts, each cut at ~0.05s — nowhere near 2 × 0.4s of sleeping.
        assert time.monotonic() - started < 0.6

    def test_batch_retry_covers_generate_batch(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=1)
        pipeline = make_pipeline()
        prompts = [pipeline.generate_candidates(sql).prompt for sql in QUERIES[:2]]
        results = llm.generate_batch_with_retry(
            prompts, RetryPolicy(max_attempts=2, base_delay=0.0)
        )
        assert len(results) == 2 and llm.failures_injected == 1


# ----------------------------------------------------------------------
# pipeline-level retries
# ----------------------------------------------------------------------

class TestPipelineRetries:
    def test_pipeline_survives_transient_flake(self):
        config = TaskConfig(llm_max_attempts=3, llm_retry_base_delay=0.0)
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        pipeline = make_pipeline(llm=llm, config=config)
        record = pipeline.annotate(QUERIES[0])
        assert record.accepted

    def test_pipeline_without_retries_propagates(self):
        config = TaskConfig(llm_max_attempts=1)
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=1)
        pipeline = make_pipeline(llm=llm, config=config)
        with pytest.raises(TransientLLMError):
            pipeline.annotate(QUERIES[0])

    def test_retried_run_is_bit_identical_to_smooth_run(self):
        config = TaskConfig(llm_max_attempts=3, llm_retry_base_delay=0.0)
        smooth = make_pipeline(config=config)
        flaky = make_pipeline(
            llm=FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2),
            config=config,
        )
        smooth_records = smooth.annotate_many(QUERIES)
        flaky_records = flaky.annotate_many(QUERIES)
        assert flaky_records == smooth_records


# ----------------------------------------------------------------------
# drain fault isolation
# ----------------------------------------------------------------------

class TestDrainIsolation:
    POISON = "SELEC name FRM employees"  # parses at submit, dies at annotate

    def test_poisoned_job_is_quarantined_not_fatal(self):
        service = AnnotationService()
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr")
        service.submit(self.POISON, project="hr")
        service.submit(QUERIES[1], project="hr")
        completed = service.drain()

        assert len(completed) == 3
        failures = [item for item in completed if item.failed]
        assert len(failures) == 1
        assert failures[0].job.sql == self.POISON
        assert failures[0].record is None and failures[0].error
        assert service.quarantine == failures
        assert service.stats.failed == 1
        assert service.stats.completed == 2
        assert service.stats.pending == 0
        # the healthy jobs produced real annotations
        healthy = [item for item in completed if not item.failed]
        assert all(item.record.accepted for item in healthy)
        assert service.pipeline("hr").example_count == 2

    def test_isolated_records_match_a_poison_free_run(self):
        poisoned = AnnotationService()
        poisoned.register_project("hr", make_schema())
        for sql in (QUERIES[0], self.POISON, QUERIES[1], QUERIES[2]):
            poisoned.submit(sql, project="hr")
        poisoned_records = [
            item.record for item in poisoned.drain() if not item.failed
        ]

        clean = AnnotationService()
        clean.register_project("hr", make_schema())
        for sql in (QUERIES[0], QUERIES[1], QUERIES[2]):
            clean.submit(sql, project="hr")
        clean_records = [item.record for item in clean.drain()]

        # Same annotations (ignoring auto query-id numbering, which counts
        # every produced record): SQL, NL and acceptance all line up.
        assert [(r.sql, r.nl, r.accepted) for r in poisoned_records] == [
            (r.sql, r.nl, r.accepted) for r in clean_records
        ]

    def test_quarantine_survives_recovery(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc")
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr")
        service.submit(self.POISON, project="hr")
        service.drain()
        assert service.stats.failed == 1
        live = semantic_state(service)
        assert live["quarantine"]
        service.close()

        recovered = AnnotationService.open_durable(tmp_path / "svc")
        assert semantic_state(recovered) == live
        assert recovered.stats.failed == 1
        assert recovered.stats.pending == 0
        recovered.close()

    def test_flaky_batch_call_heals_within_the_drain(self):
        config = TaskConfig(llm_max_attempts=3, llm_retry_base_delay=0.0)
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        service = AnnotationService()
        service.register_project("hr", make_schema(), config=config, llm=llm)
        service.submit_many(QUERIES, project="hr")
        completed = service.drain()
        assert len(completed) == len(QUERIES)
        assert not any(item.failed for item in completed)
        assert service.stats.failed == 0

    def test_journal_errors_are_never_swallowed(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc")
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr")
        service.journal.close()  # durability lost mid-flight
        with pytest.raises(JournalError):
            service.drain()


# ----------------------------------------------------------------------
# circuit breaker (unit)
# ----------------------------------------------------------------------

class FakeClock:
    """Steppable monotonic clock for breaker/deadline unit tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def make(self, **overrides):
        clock = FakeClock()
        kwargs = dict(
            window=4,
            failure_rate=0.5,
            min_calls=2,
            recovery_timeout=1.0,
            probe_budget=1,
            clock=clock,
        )
        kwargs.update(overrides)
        return CircuitBreaker(**kwargs), clock

    def test_trips_open_at_failure_rate_and_fast_fails(self):
        breaker, _ = self.make()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"  # min_calls guard: 1 outcome only
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 1
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.fast_fails == 2

    def test_successes_keep_the_breaker_closed(self):
        breaker, _ = self.make(failure_rate=0.75)
        for _ in range(3):
            breaker.record_success()
            breaker.record_failure()
        assert breaker.state == "closed"  # never reaches 75% in the window

    def test_window_is_rolling(self):
        breaker, _ = self.make(window=2, min_calls=2, failure_rate=0.75)
        breaker.record_failure()
        for _ in range(4):
            breaker.record_success()
        # The old failure has rolled out of the 2-slot window.
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"

    def test_half_open_probe_success_closes_and_clears_window(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(0.5)
        assert breaker.state == "open"  # recovery window not over yet
        clock.advance(0.6)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # probe budget exhausted
        breaker.record_success()
        assert breaker.state == "closed"
        # Window was cleared on close: one failure must not re-trip.
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and breaker.opens == 2
        # The recovery clock restarted at the re-trip.
        clock.advance(0.5)
        assert not breaker.would_allow()
        clock.advance(0.6)
        assert breaker.would_allow()

    def test_would_allow_never_consumes_the_probe(self):
        breaker, clock = self.make()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.1)
        for _ in range(5):
            assert breaker.would_allow()
        assert breaker.allow()  # the probe slot is still there

    def test_multi_probe_budget_requires_consecutive_successes(self):
        breaker, clock = self.make(probe_budget=2)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow() and breaker.allow()
        breaker.record_success()
        assert breaker.state == "half_open"  # one of two successes in
        breaker.record_success()
        assert breaker.state == "closed"

    def test_transition_callback_sees_every_edge(self):
        transitions = []
        clock = FakeClock()
        breaker = CircuitBreaker(
            window=4,
            min_calls=2,
            recovery_timeout=1.0,
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert transitions == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_parameter_validation(self):
        for bad in (
            dict(window=0),
            dict(failure_rate=0.0),
            dict(failure_rate=1.5),
            dict(min_calls=0),
            dict(recovery_timeout=-1),
            dict(probe_budget=0),
        ):
            with pytest.raises(PipelineError):
                CircuitBreaker(**bad)

    def test_config_builder_round_trip(self):
        config = TaskConfig(
            breaker_enabled=True,
            breaker_window=8,
            breaker_failure_rate=0.25,
            breaker_min_calls=3,
            breaker_recovery_s=0.5,
            breaker_probes=2,
        )
        config.validate()
        breaker = config.circuit_breaker()
        assert breaker is not None and breaker.window == 8
        assert breaker.probe_budget == 2
        assert TaskConfig().circuit_breaker() is None
        assert TaskConfig.from_dict(config.to_dict()) == config
        with pytest.raises(PipelineError):
            TaskConfig(breaker_enabled=True, breaker_failure_rate=0).validate()


# ----------------------------------------------------------------------
# deadline budgets
# ----------------------------------------------------------------------

class TestDeadline:
    def test_remaining_expired_and_clamp(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.0)
        assert deadline.clamp(5.0) == pytest.approx(1.0)
        assert deadline.clamp(0.2) == pytest.approx(0.2)
        assert deadline.clamp(None) == pytest.approx(1.0)
        clock.advance(1.5)
        assert deadline.expired and deadline.remaining() == 0.0
        with pytest.raises(PipelineError):
            Deadline(-1.0)

    def test_coerce(self):
        assert Deadline.coerce(None) is None
        existing = Deadline(1.0)
        assert Deadline.coerce(existing) is existing
        coerced = Deadline.coerce(2)
        assert isinstance(coerced, Deadline) and coerced.budget == 2.0

    def test_expired_deadline_fails_before_calling_the_backend(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=0)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        clock = FakeClock()
        deadline = Deadline(0.5, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            llm.generate_with_retry(prompt, None, deadline=deadline)
        assert llm.calls == 0

    def test_deadline_cut_call_is_not_blamed_on_the_breaker(self):
        llm = SlowLLM(SimulatedLLM("gpt-4o", schema=make_schema()), delay_seconds=0.5)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        breaker = CircuitBreaker(window=2, min_calls=1, failure_rate=0.5)
        with pytest.raises(DeadlineExceededError):
            llm.generate_with_retry(
                prompt,
                RetryPolicy(max_attempts=2, base_delay=0.0),
                deadline=Deadline(0.05),
                breaker=breaker,
            )
        # The backend was cut at the caller's deadline, not its own timeout:
        # the breaker must not count that as a backend failure.
        assert breaker.state == "closed" and breaker.opens == 0

    def test_drain_with_expired_deadline_defers_everything(self):
        service = AnnotationService()
        service.register_project("hr", make_schema())
        service.submit_many(QUERIES[:3], project="hr")
        completed = service.drain(deadline=0.0)
        assert completed == []
        report = service.last_drain_report
        assert report is not None
        assert report.deferred == 3 and report.deadline_expired
        assert service.pending_count == 3  # re-queued, not lost
        assert service.stats.deferred == 3
        assert service.stats.pending == 3

        # A later, unconstrained drain picks the deferred jobs back up.
        completed = service.drain()
        assert len(completed) == 3 and not any(item.failed for item in completed)
        assert service.pending_count == 0

    def test_deferred_drain_results_match_an_undeferred_run(self):
        deferred = AnnotationService()
        deferred.register_project("hr", make_schema())
        deferred.submit_many(QUERIES, project="hr")
        deferred.drain(deadline=0.0)  # defer everything once
        records_deferred = [item.record for item in deferred.drain()]

        plain = AnnotationService()
        plain.register_project("hr", make_schema())
        plain.submit_many(QUERIES, project="hr")
        records_plain = [item.record for item in plain.drain()]
        assert records_deferred == records_plain


# ----------------------------------------------------------------------
# retry budget
# ----------------------------------------------------------------------

class TestRetryBudget:
    def test_budget_stops_backoff_sleeps_early(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=10)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        policy = RetryPolicy(
            max_attempts=10, base_delay=0.5, jitter=0.0, retry_budget_s=0.05
        )
        started = time.monotonic()
        with pytest.raises(TransientLLMError):
            llm.generate_with_retry(prompt, policy)
        elapsed = time.monotonic() - started
        # Without the budget this would sleep ~0.5s after the first failure
        # alone; the budget refuses the first backoff that does not fit.
        assert elapsed < 0.3
        assert llm.calls < 4

    def test_budget_with_fitting_delays_still_heals(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.001, jitter=0.0, retry_budget_s=5.0
        )
        result = llm.generate_with_retry(prompt, policy)
        assert result.candidates and llm.calls == 3

    def test_config_knob_validates(self):
        config = TaskConfig(llm_retry_budget_s=1.5)
        config.validate()
        assert config.retry_policy().retry_budget_s == 1.5
        with pytest.raises(PipelineError):
            TaskConfig(llm_retry_budget_s=0).validate()


# ----------------------------------------------------------------------
# hedged requests
# ----------------------------------------------------------------------

class StutterLLM(LLMClient):
    """First ``slow_calls`` calls sleep; later calls return instantly."""

    def __init__(self, inner, slow_calls: int = 1, delay_seconds: float = 0.5):
        self.inner = inner
        self.name = inner.name
        self.slow_calls = slow_calls
        self.delay_seconds = delay_seconds
        self.calls = 0

    @property
    def example_content_sensitive(self) -> bool:  # type: ignore[override]
        return self.inner.example_content_sensitive

    def _maybe_sleep(self) -> None:
        self.calls += 1
        if self.calls <= self.slow_calls:
            time.sleep(self.delay_seconds)

    def generate(self, prompt):
        self._maybe_sleep()
        return self.inner.generate(prompt)

    def generate_batch(self, prompts):
        self._maybe_sleep()
        return self.inner.generate_batch(prompts)

    def backtranslate(self, description, schema_text=""):
        return self.inner.backtranslate(description, schema_text)


class TestHedging:
    def test_resolve_delay_fixed_derived_and_untrusted(self):
        assert HedgePolicy(delay_s=0.2).resolve_delay([]) == 0.2
        derived = HedgePolicy(percentile=0.5, min_samples=4)
        assert derived.resolve_delay([0.1, 0.2]) is None  # too few samples
        samples = [0.1, 0.2, 0.3, 0.4]
        assert derived.resolve_delay(samples) == 0.3
        with pytest.raises(PipelineError):
            HedgePolicy(delay_s=-1)
        with pytest.raises(PipelineError):
            HedgePolicy(percentile=1.0)
        with pytest.raises(PipelineError):
            HedgePolicy(min_samples=0)

    def test_backup_call_wins_behind_a_slow_primary(self):
        llm = StutterLLM(
            SimulatedLLM("gpt-4o", schema=make_schema()), delay_seconds=0.5
        )
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        started = time.monotonic()
        result = llm.generate_with_retry(
            prompt, None, hedge=HedgePolicy(delay_s=0.05)
        )
        elapsed = time.monotonic() - started
        assert result.candidates
        assert llm.calls == 2  # primary + hedge
        assert elapsed < 0.4  # the 0.5s primary never gated the answer

    def test_fast_primary_is_never_hedged(self):
        llm = StutterLLM(
            SimulatedLLM("gpt-4o", schema=make_schema()), slow_calls=0
        )
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        result = llm.generate_with_retry(
            prompt, None, hedge=HedgePolicy(delay_s=0.2)
        )
        assert result.candidates and llm.calls == 1

    def test_derived_delay_waits_for_samples(self):
        llm = StutterLLM(
            SimulatedLLM("gpt-4o", schema=make_schema()), slow_calls=0
        )
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        hedge = HedgePolicy(min_samples=3)
        for expected_calls in (1, 2, 3):
            llm.generate_with_retry(prompt, None, hedge=hedge)
            assert llm.calls == expected_calls  # unhedged: no samples yet...
        assert len(llm.latency_samples) == 3
        # ...and with the reservoir primed, a fast primary still wins alone.
        llm.generate_with_retry(prompt, None, hedge=hedge)
        assert llm.calls == 4

    def test_hedged_result_matches_unhedged(self):
        plain = SimulatedLLM("gpt-4o", schema=make_schema())
        hedged = StutterLLM(
            SimulatedLLM("gpt-4o", schema=make_schema()), delay_seconds=0.3
        )
        prompt = make_pipeline().generate_candidates(QUERIES[0]).prompt
        expected = plain.generate_with_retry(prompt, None)
        actual = hedged.generate_with_retry(
            prompt, None, hedge=HedgePolicy(delay_s=0.02)
        )
        assert actual.candidates == expected.candidates

    def test_config_builder(self):
        config = TaskConfig(llm_hedge_enabled=True, llm_hedge_delay_s=0.1)
        config.validate()
        policy = config.hedge_policy()
        assert policy is not None and policy.delay_s == 0.1
        assert TaskConfig().hedge_policy() is None
        with pytest.raises(PipelineError):
            TaskConfig(llm_hedge_percentile=0.0).validate()


# ----------------------------------------------------------------------
# breaker-open deferral (service integration)
# ----------------------------------------------------------------------

def breaker_config(**overrides) -> TaskConfig:
    kwargs = dict(
        llm_max_attempts=2,
        llm_retry_base_delay=0.0,
        breaker_enabled=True,
        breaker_window=4,
        breaker_failure_rate=0.5,
        breaker_min_calls=2,
        breaker_recovery_s=0.05,
    )
    kwargs.update(overrides)
    return TaskConfig(**kwargs)


class TestBreakerDeferral:
    def test_open_breaker_defers_instead_of_quarantining(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        service = AnnotationService()
        service.register_project("hr", make_schema(), config=breaker_config(), llm=llm)
        service.submit_many(QUERIES, project="hr")

        completed = service.drain()
        # Both retry attempts of the first wave failed -> breaker tripped ->
        # the whole batch was deferred, with nothing quarantined.
        assert completed == []
        assert service.pipeline("hr").breaker.opens == 1
        assert service.stats.failed == 0 and not service.quarantine
        assert service.stats.deferred == len(QUERIES)
        assert service.pending_count == len(QUERIES)
        report = service.last_drain_report
        assert report is not None and report.deferred == len(QUERIES)

        # After the recovery window the probe succeeds and the queue drains.
        time.sleep(0.06)
        completed = service.drain()
        assert len(completed) == len(QUERIES)
        assert not any(item.failed for item in completed)
        assert service.pipeline("hr").breaker.state == "closed"

    def test_deferred_results_match_a_clean_run(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        broken = AnnotationService()
        broken.register_project("hr", make_schema(), config=breaker_config(), llm=llm)
        broken.submit_many(QUERIES, project="hr")
        assert broken.drain() == []
        time.sleep(0.06)
        broken_records = [item.record for item in broken.drain()]

        clean = AnnotationService()
        clean.register_project("hr", make_schema(), config=breaker_config())
        clean.submit_many(QUERIES, project="hr")
        clean_records = [item.record for item in clean.drain()]
        assert broken_records == clean_records

    def test_open_breaker_defers_before_scheduling_any_wave(self):
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        service = AnnotationService()
        service.register_project("hr", make_schema(), config=breaker_config(), llm=llm)
        service.submit_many(QUERIES[:2], project="hr")
        service.drain()  # trips the breaker
        calls_after_trip = llm.calls
        service.drain()  # breaker still open: deferred up-front, no LLM calls
        assert llm.calls == calls_after_trip
        assert service.stats.deferred >= 4

    def test_breaker_telemetry_reaches_the_registry(self):
        telemetry = Telemetry()
        llm = FlakyLLM(SimulatedLLM("gpt-4o", schema=make_schema()), fail_times=2)
        service = AnnotationService(telemetry=telemetry)
        service.register_project("hr", make_schema(), config=breaker_config(), llm=llm)
        service.submit_many(QUERIES[:3], project="hr")
        service.drain()
        time.sleep(0.06)
        service.drain()
        snapshot = telemetry.metrics_dict()
        assert "llm_breaker_transitions_total" in snapshot
        transitions = {
            (
                dict(series["labels"])["from"],
                dict(series["labels"])["to"],
            )
            for series in snapshot["llm_breaker_transitions_total"]["series"]
        }
        assert ("closed", "open") in transitions
        assert "service_jobs_deferred_total" in snapshot
        assert "llm_breaker_transitions_total" in telemetry.render_prometheus()


# ----------------------------------------------------------------------
# degraded mode (disk faults)
# ----------------------------------------------------------------------

class TestDegradedMode:
    def test_disk_fault_mid_drain_salvages_and_degrades(self, tmp_path):
        # Appends: register=1, submits=2..6, commits start at 7; failing the
        # 9th append kills the third commit.
        journal = DiskFaultJournal(tmp_path / "journal.bin", fail_at=9)
        service = AnnotationService()
        service.attach_journal(journal)
        service.register_project("hr", make_schema())
        service.submit_many(QUERIES, project="hr")

        completed = service.drain()  # salvaged, not raised
        assert service.degraded
        report = service.last_drain_report
        assert report is not None and report.degraded
        assert len(completed) + report.deferred == len(QUERIES)
        assert len(completed) >= 2  # the journaled prefix
        assert service.pending_count == report.deferred
        assert service.stats.deferred == report.deferred
        assert service.journal is None  # detached on degradation

        with pytest.raises(DegradedModeError):
            service.submit(QUERIES[0], project="hr")
        with pytest.raises(DegradedModeError):
            service.drain()
        # Reads still work in degraded mode.
        assert service.pipeline("hr").annotations
        assert service.capture_state()["projects"]

    def test_disk_fault_at_submit_rejects_and_degrades(self, tmp_path):
        journal = DiskFaultJournal(tmp_path / "journal.bin", fail_at=2)
        service = AnnotationService()
        service.attach_journal(journal)
        service.register_project("hr", make_schema())
        with pytest.raises(DegradedModeError):
            service.submit(QUERIES[0], project="hr")
        assert service.degraded
        assert service.pending_count == 0  # nothing half-enqueued
        assert service.stats.submitted == 0

    def test_recovery_from_degraded_journal_completes_the_work(self, tmp_path):
        journal = DiskFaultJournal(tmp_path / "journal.bin", fail_at=9)
        service = AnnotationService()
        service.attach_journal(journal)
        service.register_project("hr", make_schema())
        service.submit_many(QUERIES, project="hr")
        service.drain()
        assert service.degraded

        recovered = AnnotationService.recover(tmp_path / "journal.bin")
        assert not recovered.degraded
        assert recovered.pending_count > 0  # the jobs the fault deferred
        recovered.drain()
        assert recovered.pending_count == 0
        assert len(recovered.pipeline("hr").annotations) == len(QUERIES)

        clean = AnnotationService()
        clean.register_project("hr", make_schema())
        clean.submit_many(QUERIES, project="hr")
        clean.drain()
        assert [
            (r.sql, r.nl, r.accepted)
            for r in recovered.pipeline("hr").annotations
        ] == [
            (r.sql, r.nl, r.accepted) for r in clean.pipeline("hr").annotations
        ]
        recovered.close()

    def test_degraded_transition_telemetry(self, tmp_path):
        telemetry = Telemetry()
        journal = DiskFaultJournal(tmp_path / "journal.bin", fail_at=3)
        service = AnnotationService(telemetry=telemetry)
        service.attach_journal(journal)
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr")
        with pytest.raises(DegradedModeError):
            service.submit(QUERIES[1], project="hr")
        snapshot = telemetry.metrics_dict()
        assert (
            snapshot["service_degraded_transitions_total"]["series"][0]["value"]
            == 1.0
        )


# ----------------------------------------------------------------------
# load shedding
# ----------------------------------------------------------------------

class TestLoadShedding:
    def make_service(self) -> AnnotationService:
        service = AnnotationService(global_pending_limit=4, shed_threshold=0.5)
        service.register_project("hr", make_schema())
        return service

    def test_low_priority_is_shed_first(self):
        service = self.make_service()
        service.submit(QUERIES[0], project="hr")
        service.submit(QUERIES[1], project="hr")
        # At the shed floor (0.5 * 4 = 2 pending): priority <= 0 is refused...
        with pytest.raises(BackpressureError):
            service.submit(QUERIES[2], project="hr")
        # ...but positive-priority traffic keeps flowing up to the limit.
        service.submit(QUERIES[2], project="hr", priority=1)
        service.submit(QUERIES[3], project="hr", priority=5)
        with pytest.raises(BackpressureError):
            service.submit(QUERIES[4], project="hr", priority=100)  # hard limit
        assert service.pending_count == 4

    def test_draining_reopens_admission(self):
        service = self.make_service()
        service.submit(QUERIES[0], project="hr")
        service.submit(QUERIES[1], project="hr")
        with pytest.raises(BackpressureError):
            service.submit(QUERIES[2], project="hr")
        service.drain()
        service.submit(QUERIES[2], project="hr")  # queue emptied: admitted
        assert service.pending_count == 1

    def test_priority_survives_recovery(self, tmp_path):
        service = AnnotationService.open_durable(tmp_path / "svc")
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr", priority=7)
        service.close()
        recovered = AnnotationService.open_durable(tmp_path / "svc")
        assert recovered.pending_jobs()[0].priority == 7
        recovered.close()

    def test_shed_telemetry_and_validation(self):
        telemetry = Telemetry()
        service = AnnotationService(
            telemetry=telemetry, global_pending_limit=1, shed_threshold=1.0
        )
        service.register_project("hr", make_schema())
        service.submit(QUERIES[0], project="hr")
        with pytest.raises(BackpressureError):
            service.submit(QUERIES[1], project="hr", priority=9)
        assert (
            telemetry.metrics_dict()["service_load_shed_total"]["series"][0]["value"]
            == 1.0
        )
        with pytest.raises(PipelineError):
            AnnotationService(global_pending_limit=-1)
        with pytest.raises(PipelineError):
            AnnotationService(shed_threshold=0.0)


# ----------------------------------------------------------------------
# context managers
# ----------------------------------------------------------------------

class TestContextManagers:
    def test_service_context_manager_closes_the_journal(self, tmp_path):
        with AnnotationService.open_durable(tmp_path / "svc") as service:
            service.register_project("hr", make_schema())
            service.submit(QUERIES[0], project="hr")
            service.drain()
            assert service.journal is not None
        assert service.journal is None  # closed (and detached) on exit
        service.close()  # idempotent

        with AnnotationService.open_durable(tmp_path / "svc") as recovered:
            assert len(recovered.pipeline("hr").annotations) == 1

    def test_journal_context_manager_is_idempotent(self, tmp_path):
        from repro.core import EventJournal

        with EventJournal(tmp_path / "journal.bin") as journal:
            journal.append("alpha", {})
            journal.close()  # early close inside the block is fine
        with pytest.raises(JournalError):
            journal.append("beta", {})
