"""Unit tests for the expression compiler and the engine's caching tiers."""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.engine.compiler import compile_group_expression, compile_row_expression
from repro.engine.storage import ColumnLabel, Relation
from repro.errors import ExecutionError
from repro.metrics.execution import (
    GoldResultCache,
    compare_execution,
    compare_execution_many,
)
from repro.sql.parser import parse_expression


@pytest.fixture()
def relation() -> Relation:
    return Relation(
        labels=[
            ColumnLabel(name="id", relation="t"),
            ColumnLabel(name="name", relation="t"),
            ColumnLabel(name="amount", relation="t"),
        ],
        rows=[
            (1, "alpha", 10.0),
            (2, "beta", None),
            (3, None, 7.5),
        ],
    )


class TestRowCompiler:
    def test_column_and_arithmetic(self, relation):
        fn = compile_row_expression(parse_expression("t.amount * 2 + id"), relation)
        assert fn is not None
        assert fn(relation.rows[0]) == 21.0
        assert fn(relation.rows[1]) is None  # NULL propagates

    def test_comparisons_null_propagation(self, relation):
        fn = compile_row_expression(parse_expression("amount > 8"), relation)
        assert fn(relation.rows[0]) is True
        assert fn(relation.rows[1]) is None
        assert fn(relation.rows[2]) is False

    def test_three_valued_and_or(self, relation):
        # row 1 has amount NULL and id 2
        and_false = compile_row_expression(parse_expression("amount > 8 AND id = 1"), relation)
        # NULL AND FALSE is FALSE (matches the interpreter's short-circuit)
        assert and_false(relation.rows[1]) is False
        and_true = compile_row_expression(parse_expression("amount > 8 AND id = 2"), relation)
        # NULL AND TRUE is NULL
        assert and_true(relation.rows[1]) is None
        or_fn = compile_row_expression(parse_expression("amount > 8 OR id = 2"), relation)
        # NULL OR TRUE is TRUE
        assert or_fn(relation.rows[1]) is True
        or_null = compile_row_expression(parse_expression("amount > 8 OR id = 1"), relation)
        # NULL OR FALSE is NULL
        assert or_null(relation.rows[1]) is None

    def test_like_precompiled_regex(self, relation):
        fn = compile_row_expression(parse_expression("name LIKE 'AL%'"), relation)
        assert fn(relation.rows[0]) is True  # case-insensitive
        assert fn(relation.rows[1]) is False
        assert fn(relation.rows[2]) is None

    def test_in_list_of_literals(self, relation):
        fn = compile_row_expression(parse_expression("id IN (1, 3)"), relation)
        assert [fn(row) for row in relation.rows] == [True, False, True]
        negated = compile_row_expression(parse_expression("id NOT IN (1, 3)"), relation)
        assert [negated(row) for row in relation.rows] == [False, True, False]

    def test_case_cast_and_functions(self, relation):
        fn = compile_row_expression(
            parse_expression(
                "CASE WHEN amount IS NULL THEN 'none' ELSE UPPER(name) END"
            ),
            relation,
        )
        assert fn(relation.rows[0]) == "ALPHA"
        assert fn(relation.rows[1]) == "none"
        cast_fn = compile_row_expression(parse_expression("CAST(amount AS INT)"), relation)
        assert cast_fn(relation.rows[0]) == 10
        assert cast_fn(relation.rows[1]) is None

    def test_unknown_column_is_not_compilable(self, relation):
        assert compile_row_expression(parse_expression("missing + 1"), relation) is None

    def test_subqueries_are_not_compilable(self, relation):
        expression = parse_expression("id IN (SELECT 1)")
        assert compile_row_expression(expression, relation) is None

    def test_aggregates_not_compilable_in_row_mode(self, relation):
        assert compile_row_expression(parse_expression("SUM(amount)"), relation) is None

    def test_unknown_function_not_compilable(self, relation):
        assert compile_row_expression(parse_expression("NO_SUCH_FN(id)"), relation) is None


class TestGroupCompiler:
    def test_aggregate_over_group(self, relation):
        fn = compile_group_expression(parse_expression("SUM(amount)"), relation)
        assert fn(relation.rows, relation.rows[0]) == 17.5
        count = compile_group_expression(parse_expression("COUNT(*)"), relation)
        assert count(relation.rows, relation.rows[0]) == 3

    def test_aggregate_arithmetic(self, relation):
        fn = compile_group_expression(
            parse_expression("SUM(amount) / COUNT(*)"), relation
        )
        assert fn(relation.rows, relation.rows[0]) == pytest.approx(17.5 / 3)

    def test_non_aggregate_uses_representative_row(self, relation):
        fn = compile_group_expression(parse_expression("name"), relation)
        assert fn(relation.rows, relation.rows[1]) == "beta"

    def test_aggregate_inside_unsupported_node_falls_back(self, relation):
        # BETWEEN containing an aggregate needs the interpreter's group context.
        expression = parse_expression("COUNT(*) BETWEEN 1 AND 5")
        assert compile_group_expression(expression, relation) is None


class TestStatementCache:
    def test_repeated_sql_parses_once(self):
        database = Database("cache")
        database.execute("CREATE TABLE t (id INT)")
        database.execute("INSERT INTO t (id) VALUES (1), (2)")
        baseline_misses = database.statement_cache_misses
        baseline_hits = database.statement_cache_hits
        for _ in range(5):
            assert database.execute("SELECT COUNT(*) FROM t").rows == [(2,)]
        assert database.statement_cache_misses == baseline_misses + 1
        assert database.statement_cache_hits == baseline_hits + 4

    def test_lru_eviction(self):
        database = Database("small-cache", statement_cache_size=2)
        database.execute("CREATE TABLE t (id INT)")
        database.execute("SELECT 1")
        database.execute("SELECT 2")
        database.execute("SELECT 3")  # evicts the oldest entry
        misses = database.statement_cache_misses
        database.execute("SELECT 3")  # hit
        assert database.statement_cache_misses == misses
        database.execute("SELECT 1")  # was evicted: re-parsed
        assert database.statement_cache_misses == misses + 1

    def test_parse_errors_are_not_cached(self):
        database = Database("errors")
        with pytest.raises(Exception):
            database.parse_cached("SELEC nope")
        assert len(database._statement_cache) == 0


class TestVersionedInvalidation:
    def test_subquery_cache_invalidated_by_sql_insert(self):
        database = Database("versions")
        database.execute("CREATE TABLE t (id INT)")
        database.execute("INSERT INTO t (id) VALUES (1)")
        sql = "SELECT (SELECT COUNT(*) FROM t)"
        assert database.execute(sql).rows == [(1,)]
        database.execute("INSERT INTO t (id) VALUES (2)")
        # Same cached AST object; the data-version bump must invalidate the
        # memoised uncorrelated subquery result.
        assert database.execute(sql).rows == [(2,)]

    def test_subquery_cache_invalidated_by_direct_table_insert(self):
        database = Database("direct")
        database.execute("CREATE TABLE t (id INT)")
        sql = "SELECT (SELECT COUNT(*) FROM t)"
        assert database.execute(sql).rows == [(0,)]
        # The workload generator inserts straight into the stored table.
        database.table("t").insert_rows([(1,), (2,)])
        assert database.execute(sql).rows == [(2,)]

    def test_data_version_counts_mutations(self):
        database = Database("counter")
        database.execute("CREATE TABLE t (id INT)")
        version = database.data_version
        database.execute("INSERT INTO t (id) VALUES (1), (2)")
        assert database.data_version == version + 2
        read_version = database.data_version
        database.execute("SELECT * FROM t")
        assert database.data_version == read_version  # reads do not invalidate

    def test_catalog_version_bumped_by_ddl(self):
        database = Database("ddl")
        version = database.catalog_version
        database.execute("CREATE TABLE t (id INT)")
        assert database.catalog_version == version + 1
        database.drop_table("t")
        assert database.catalog_version == version + 2

    def test_drop_and_recreate_clears_compiled_plans(self):
        database = Database("replan")
        database.execute("CREATE TABLE t (a INT, b INT)")
        database.execute("INSERT INTO t (a, b) VALUES (1, 10)")
        sql = "SELECT b FROM t WHERE a = 1"
        assert database.execute(sql).rows == [(10,)]
        database.drop_table("t")
        # Recreate with the column order swapped: stale compiled indices would
        # read the wrong column.
        database.execute("CREATE TABLE t (b INT, a INT)")
        database.execute("INSERT INTO t (b, a) VALUES (20, 1)")
        assert database.execute(sql).rows == [(20,)]

    def test_executor_mode_validation(self):
        database = Database("modes")
        with pytest.raises(ValueError):
            database.executor_mode = "turbo"
        with pytest.raises(ValueError):
            Database("bad", executor_mode="turbo")
        database.executor_mode = "interpreted"
        assert database.executor_mode == "interpreted"


class TestGoldResultCache:
    @pytest.fixture()
    def database(self):
        database = Database("gold")
        database.execute("CREATE TABLE t (id INT, v INT)")
        database.execute("INSERT INTO t (id, v) VALUES (1, 10), (2, 20), (3, 30)")
        return database

    def test_gold_executes_once_across_models(self, database, monkeypatch):
        gold = "SELECT v FROM t WHERE id <= 2"
        executed: list[str] = []
        original = Database.execute_statement

        def counting(self, statement):
            executed.append(statement.__class__.__name__)
            return original(self, statement)

        monkeypatch.setattr(Database, "execute_statement", counting)
        cache = GoldResultCache(database)
        predictions = ["SELECT v FROM t WHERE id <= 2", "SELECT v FROM t", "SELECT 1"]
        outcomes = [
            compare_execution(database, gold, predicted, gold_cache=cache)
            for predicted in predictions
        ]
        assert [outcome.match for outcome in outcomes] == [True, False, False]
        # 3 predicted executions + exactly 1 gold execution.
        assert len(executed) == 4
        assert cache.hits == 2
        assert cache.misses == 1

    def test_cache_invalidated_by_dml(self, database):
        cache = GoldResultCache(database)
        gold = "SELECT COUNT(*) FROM t"
        first = compare_execution(database, gold, "SELECT 3", gold_cache=cache)
        assert first.match
        database.execute("INSERT INTO t (id, v) VALUES (4, 40)")
        second = compare_execution(database, gold, "SELECT 4", gold_cache=cache)
        assert second.match  # stale gold (3) would not match the new count

    def test_compare_execution_many_matches_singles(self, database):
        pairs = [
            ("SELECT v FROM t ORDER BY v DESC", "SELECT v FROM t ORDER BY v DESC"),
            ("SELECT v FROM t ORDER BY v DESC", "SELECT v FROM t ORDER BY v ASC"),
            ("SELECT SUM(v) FROM t", "SELECT 60"),
            ("SELECT bad FROM t", "SELECT 1"),
            ("SELECT 1", None),
        ]
        many = compare_execution_many(database, pairs)
        singles = [compare_execution(database, g, p) for g, p in pairs]
        assert [m.__dict__ for m in many] == [s.__dict__ for s in singles]

    def test_ordered_gold_detected_without_reparse(self, database):
        # ORDER BY gold: order-sensitive comparison must reject reversed rows.
        baseline_misses = database.statement_cache_misses
        comparison = compare_execution(
            database,
            "SELECT v FROM t ORDER BY v ASC",
            "SELECT v FROM t ORDER BY v DESC",
        )
        assert not comparison.match
        # Gold was parsed exactly once (predicted once too): two cache misses.
        assert database.statement_cache_misses == baseline_misses + 2


class TestCompiledPlanReuse:
    def test_plan_cache_reused_across_executions(self):
        database = Database("plans")
        database.execute("CREATE TABLE t (a INT, b INT)")
        database.execute("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)")
        sql = "SELECT a + b FROM t WHERE a > 0"
        database.execute(sql)
        executor = database._executor
        plan_entries = len(executor._plan_cache)
        assert plan_entries > 0
        database.execute(sql)
        # Re-execution of the cached statement compiles nothing new.
        assert len(executor._plan_cache) == plan_entries

    def test_interpreted_mode_compiles_nothing(self):
        database = Database("interp", executor_mode="interpreted")
        database.execute("CREATE TABLE t (a INT)")
        database.execute("INSERT INTO t (a) VALUES (1)")
        database.execute("SELECT a FROM t WHERE a = 1")
        assert len(database._executor._plan_cache) == 0
