"""Tests for the BenchPress core: config, ingestion, feedback, pipeline, export, projects."""

import json

import pytest

from repro.core import (
    AnnotationPipeline,
    AnnotationTask,
    Feedback,
    FeedbackAction,
    FeedbackLoop,
    TaskConfig,
    Workspace,
    export_benchmark_json,
    export_jsonl,
    ingest_sql_log,
    load_benchmark_json,
    review_against_gold,
    split_sql_log,
    to_benchmark_records,
)
from repro.errors import (
    ExportError,
    IngestionError,
    PipelineError,
    ProjectError,
)
from repro.llm import describe_query


class TestConfig:
    def test_defaults_are_valid(self):
        TaskConfig().validate()

    def test_invalid_candidates_rejected(self):
        with pytest.raises(PipelineError):
            TaskConfig(num_candidates=0).validate()

    def test_nl_to_sql_not_supported(self):
        with pytest.raises(PipelineError):
            TaskConfig(task=AnnotationTask.NL_TO_SQL).validate()

    def test_describe_lists_enabled_features(self):
        text = TaskConfig(rag_enabled=False, decomposition_enabled=False,
                          knowledge_feedback_enabled=False).describe()
        assert "no assistance" in text
        assert "gpt-4o" in text


class TestIngestion:
    def test_split_sql_log_semicolons_and_lines(self):
        assert len(split_sql_log("SELECT 1; SELECT 2;")) == 2
        assert len(split_sql_log("SELECT 1\nSELECT 2\n-- comment\n")) == 2
        assert split_sql_log("") == []

    def test_ingest_sql_log_marks_invalid_entries(self, hr_schema):
        dataset = ingest_sql_log(
            "SELECT name FROM employees; THIS IS NOT SQL;", hr_schema, dataset_name="demo"
        )
        assert len(dataset.valid_entries) == 1
        assert len(dataset.invalid_entries) == 1
        assert dataset.invalid_entries[0].parse_error

    def test_empty_log_raises(self, hr_schema):
        with pytest.raises(IngestionError):
            ingest_sql_log("   ", hr_schema)

    def test_ingest_files(self, tmp_path, hr_schema):
        schema_path = tmp_path / "schema.sql"
        log_path = tmp_path / "log.sql"
        schema_path.write_text(hr_schema.to_ddl())
        log_path.write_text("SELECT name FROM employees;")
        from repro.core import ingest_files

        dataset = ingest_files(schema_path, log_path)
        assert dataset.schema.has_table("employees")
        assert len(dataset.valid_entries) == 1

    def test_ingest_files_missing_raises(self, tmp_path):
        from repro.core import ingest_files

        with pytest.raises(IngestionError):
            ingest_files(tmp_path / "nope.sql", tmp_path / "nope2.sql")

    def test_load_benchmark_json(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps([{"question": "q", "query": "SELECT 1", "db_id": "x"}]))
        assert load_benchmark_json(path)[0]["db_id"] == "x"
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(IngestionError):
            load_benchmark_json(bad)


class TestFeedbackLoop:
    def test_accept_selects_candidate(self):
        loop = FeedbackLoop()
        outcome = loop.apply(["first", "second"], Feedback(action=FeedbackAction.ACCEPT, selected_index=1))
        assert outcome.final_text == "second" and outcome.accepted

    def test_edit_requires_text(self):
        loop = FeedbackLoop()
        with pytest.raises(PipelineError):
            loop.apply(["x"], Feedback(action=FeedbackAction.EDIT))
        outcome = loop.apply(["x"], Feedback(action=FeedbackAction.EDIT, edited_text="fixed"))
        assert outcome.final_text == "fixed"

    def test_discard_and_regenerate(self):
        loop = FeedbackLoop()
        assert loop.apply(["x"], Feedback(action=FeedbackAction.DISCARD)).accepted is False
        assert loop.apply(["x"], Feedback(action=FeedbackAction.REGENERATE)).needs_regeneration

    def test_accept_out_of_range_raises(self):
        with pytest.raises(PipelineError):
            FeedbackLoop().apply(["only"], Feedback(action=FeedbackAction.ACCEPT, selected_index=5))

    def test_knowledge_and_priorities_accumulate(self):
        loop = FeedbackLoop()
        loop.apply(
            ["x"],
            Feedback(
                action=FeedbackAction.ACCEPT,
                selected_index=0,
                knowledge=[("J-term", "January term")],
                new_priorities=["describe filters explicitly"],
                failure_patterns=[("misses ordering", "mention ORDER BY")],
            ),
        )
        assert len(loop.knowledge) == 1
        assert loop.priorities == ["describe filters explicitly"]
        assert loop.knowledge.failure_patterns

    def test_rank_validates_permutation(self):
        loop = FeedbackLoop()
        assert loop.rank(["a", "b"], [1, 0]) == ["b", "a"]
        with pytest.raises(PipelineError):
            loop.rank(["a", "b"], [0, 0])


class TestPipeline:
    def test_generate_candidates_flat_query(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        candidate_set = pipeline.generate_candidates("SELECT name FROM employees WHERE salary > 1")
        assert candidate_set.candidates
        assert candidate_set.prompt is not None
        assert not candidate_set.was_decomposed

    def test_nested_query_is_decomposed(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        candidate_set = pipeline.generate_candidates(
            "SELECT name FROM employees WHERE dept_id IN (SELECT dept_id FROM departments)"
        )
        assert candidate_set.was_decomposed
        assert candidate_set.unit_candidates

    def test_decomposition_can_be_disabled(self, hr_schema):
        pipeline = AnnotationPipeline(
            hr_schema, config=TaskConfig(decomposition_enabled=False), dataset_name="hr"
        )
        candidate_set = pipeline.generate_candidates(
            "SELECT name FROM employees WHERE dept_id IN (SELECT dept_id FROM departments)"
        )
        assert not candidate_set.was_decomposed

    def test_annotate_accept_stores_example(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        record = pipeline.annotate("SELECT COUNT(*) FROM employees")
        assert record.accepted and record.nl
        assert pipeline.example_count == 1
        assert pipeline.accepted_annotations == [record]

    def test_empty_sql_raises(self, hr_schema):
        with pytest.raises(PipelineError):
            AnnotationPipeline(hr_schema).generate_candidates("   ")

    def test_feedback_edit_overrides_candidate(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        candidate_set = pipeline.generate_candidates("SELECT name FROM employees")
        record = pipeline.submit_feedback(
            candidate_set, Feedback(action=FeedbackAction.EDIT, edited_text="List employee names.")
        )
        assert record.nl == "List employee names."
        assert record.action == "edit"

    def test_regeneration_returns_none_then_new_candidates(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        candidate_set = pipeline.generate_candidates("SELECT name FROM employees")
        outcome = pipeline.submit_feedback(
            candidate_set,
            Feedback(action=FeedbackAction.REGENERATE, new_priorities=["mention the table"]),
        )
        assert outcome is None
        assert pipeline.feedback_loop.priorities == ["mention the table"]

    def test_rag_disabled_prompt_has_no_schema(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema, config=TaskConfig(rag_enabled=False))
        candidate_set = pipeline.generate_candidates("SELECT name FROM employees")
        assert candidate_set.prompt.has_schema_context is False


class TestExportAndReview:
    def _records(self, hr_schema):
        pipeline = AnnotationPipeline(hr_schema, dataset_name="hr")
        pipeline.annotate("SELECT COUNT(*) FROM employees", query_id="q1")
        pipeline.annotate("SELECT name FROM employees WHERE salary > 100000", query_id="q2")
        return pipeline.annotations

    def test_to_benchmark_records(self, hr_schema):
        records = to_benchmark_records(self._records(hr_schema))
        assert len(records) == 2
        assert {"question", "query", "db_id", "query_id"} <= set(records[0])

    def test_export_json_and_jsonl(self, tmp_path, hr_schema):
        annotations = self._records(hr_schema)
        json_path = export_benchmark_json(annotations, tmp_path / "bench.json")
        assert len(json.loads(json_path.read_text())) == 2
        jsonl_path = export_jsonl(annotations, tmp_path / "bench.jsonl")
        assert len(jsonl_path.read_text().strip().splitlines()) == 2

    def test_export_empty_raises(self, tmp_path):
        with pytest.raises(ExportError):
            export_benchmark_json([], tmp_path / "x.json")

    def test_review_against_gold(self, hr_schema):
        annotations = self._records(hr_schema)
        gold = {record.query_id: record.nl for record in annotations}
        report = review_against_gold(annotations, gold)
        assert report.count == 2
        assert report.exact_match_rate == 1.0
        assert report.mean_bleu == pytest.approx(1.0)

    def test_review_with_no_matching_ids_raises(self, hr_schema):
        with pytest.raises(ExportError):
            review_against_gold(self._records(hr_schema), {"unknown": "text"})


class TestWorkspace:
    def test_workspace_requires_username(self):
        with pytest.raises(ProjectError):
            Workspace("  ")

    def test_api_key_never_exposed(self):
        workspace = Workspace("alice", api_key="secret")
        assert workspace.has_api_key
        assert "secret" not in repr(vars(workspace).keys())

    def test_create_project_from_log_and_progress(self, hr_schema):
        workspace = Workspace("alice")
        project = workspace.create_project_from_log(
            "proj", hr_schema, "SELECT name FROM employees; SELECT dept_name FROM departments;"
        )
        assert workspace.project_names == ["proj"]
        assert len(project.pending_queries) == 2
        assert project.progress == 0.0
        project.pipeline.annotate(project.pending_queries[0])
        assert project.progress == 0.5

    def test_duplicate_project_raises(self, hr_schema):
        workspace = Workspace("alice")
        workspace.create_project_from_log("proj", hr_schema, "SELECT 1 FROM employees")
        with pytest.raises(ProjectError):
            workspace.create_project_from_log("proj", hr_schema, "SELECT 1 FROM employees")

    def test_delete_project(self, hr_schema):
        workspace = Workspace("alice")
        workspace.create_project_from_log("proj", hr_schema, "SELECT name FROM employees")
        workspace.delete_project("proj")
        assert workspace.project_names == []
        with pytest.raises(ProjectError):
            workspace.project("proj")
