"""Tests for the schema model, DDL parsing, profiler and linking."""

import pytest

from repro.engine import Database
from repro.errors import IngestionError, SchemaError
from repro.schema import (
    ColumnSchema,
    DatabaseSchema,
    TableSchema,
    ambiguous_column_names,
    link_sql_to_schema,
    link_text_to_schema,
    parse_ddl_script,
    profile_database,
    profile_schema,
    relative_difference,
    schema_from_database,
    split_identifier,
)


class TestSchemaModel:
    def test_table_lookup_case_insensitive(self, hr_schema):
        assert hr_schema.table("EMPLOYEES").name == "employees"
        assert hr_schema.has_table("Departments")

    def test_missing_table_raises(self, hr_schema):
        with pytest.raises(SchemaError):
            hr_schema.table("missing")

    def test_column_lookup(self, hr_schema):
        employees = hr_schema.table("employees")
        assert employees.column("SALARY").name == "salary"
        assert employees.has_column("dept_id")
        with pytest.raises(SchemaError):
            employees.column("missing")

    def test_add_duplicate_table_raises(self, hr_schema):
        with pytest.raises(SchemaError):
            hr_schema.add_table(TableSchema(name="employees"))

    def test_to_ddl_round_trips_through_parser(self, hr_schema):
        ddl = hr_schema.to_ddl()
        parsed = parse_ddl_script(ddl, schema_name="roundtrip")
        assert sorted(parsed.table_names) == sorted(hr_schema.table_names)
        assert parsed.table("employees").foreign_keys[0].referenced_table == "departments"

    def test_serialize_for_prompt_filters_tables(self, hr_schema):
        text = hr_schema.serialize_for_prompt(["employees"])
        assert "TABLE employees" in text
        assert "departments" in text  # via the FK comment
        assert "TABLE departments" not in text

    def test_column_count_and_all_columns(self, hr_schema):
        assert hr_schema.column_count() == 8
        assert len(hr_schema.all_columns()) == 8

    def test_schema_from_database(self, hr_database):
        schema = schema_from_database(hr_database)
        assert set(schema.table_names) == {"departments", "employees"}
        assert schema.table("employees").column("emp_id").primary_key is True


class TestDDLParser:
    def test_parses_multiple_tables(self):
        schema = parse_ddl_script(
            "CREATE TABLE a (id INT PRIMARY KEY); CREATE TABLE b (id INT, a_id INT REFERENCES a (id));"
        )
        assert schema.table_names == ["a", "b"]
        assert schema.table("b").foreign_keys[0].referenced_table == "a"

    def test_table_level_constraints(self):
        schema = parse_ddl_script(
            "CREATE TABLE t (a INT, b INT, PRIMARY KEY (a), FOREIGN KEY (b) REFERENCES u (x))"
        )
        assert schema.table("t").column("a").primary_key is True
        assert schema.table("t").foreign_keys[0].referenced_column == "x"

    def test_empty_script_raises(self):
        with pytest.raises(IngestionError):
            parse_ddl_script("SELECT 1")

    def test_invalid_ddl_raises(self):
        with pytest.raises(IngestionError):
            parse_ddl_script("CREATE TABLE ???")


class TestProfiler:
    def test_profile_database_metrics(self, hr_database):
        profile = profile_database(hr_database)
        assert profile.tables_per_db == 2
        assert profile.columns_per_table == 4.0
        assert profile.rows_per_table == 4.5
        # dept_id appears in both tables -> 1 duplicated name out of 7 distinct.
        assert profile.uniqueness == pytest.approx(6 / 7)
        assert 0 < profile.sparsity < 0.1
        assert profile.data_type_diversity >= 3

    def test_profile_empty_database_raises(self):
        with pytest.raises(SchemaError):
            profile_database(Database())

    def test_profile_schema_only(self, hr_schema):
        profile = profile_schema(hr_schema)
        assert profile.rows_per_table == 0.0
        assert profile.tables_per_db == 2

    def test_profile_empty_schema_raises(self):
        with pytest.raises(SchemaError):
            profile_schema(DatabaseSchema(name="empty"))

    def test_relative_difference(self):
        assert relative_difference(50, 100) == -0.5
        assert relative_difference(150, 100) == 0.5
        assert relative_difference(0, 0) == 0.0

    def test_as_dict_keys_match_table2(self):
        keys = profile_schema(
            DatabaseSchema(name="x", tables=[TableSchema(name="t", columns=[ColumnSchema("a")])])
        ).as_dict()
        for key in ("columns_per_table", "rows_per_table", "tables_per_db", "uniqueness",
                    "sparsity", "data_types"):
            assert key in keys


class TestLinking:
    def test_split_identifier(self):
        assert split_identifier("MOIRA_LIST_NAME") == ["moira", "list", "name"]
        assert split_identifier("camelCaseName") == ["camel", "case", "name"]
        assert split_identifier("simple") == ["simple"]

    def test_link_sql_resolves_tables_and_columns(self, hr_schema):
        result = link_sql_to_schema(
            "SELECT e.name FROM employees e JOIN departments d ON e.dept_id = d.dept_id", hr_schema
        )
        assert set(result.tables) == {"employees", "departments"}
        assert ("employees", "name") in result.columns

    def test_link_sql_reports_unresolved(self, hr_schema):
        result = link_sql_to_schema("SELECT x FROM unknown_table", hr_schema)
        assert result.unresolved_tables == ["unknown_table"]
        assert "x" in result.unresolved_columns

    def test_link_text_finds_relevant_tables(self, hr_schema):
        result = link_text_to_schema("average salary of employees by department", hr_schema)
        assert "employees" in result.tables

    def test_link_text_respects_max_tables(self, hr_schema):
        result = link_text_to_schema("employees departments salary budget", hr_schema, max_tables=1)
        assert len(result.tables) == 1

    def test_link_text_no_match(self, hr_schema):
        assert link_text_to_schema("totally unrelated words", hr_schema).tables == []

    def test_ambiguous_column_names(self, hr_schema):
        ambiguous = ambiguous_column_names(hr_schema)
        assert "dept_id" in ambiguous
        assert sorted(ambiguous["dept_id"]) == ["departments", "employees"]
