"""Property-based tests for the execution engine (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.engine import Database


def _make_db(values):
    database = Database()
    database.execute("CREATE TABLE t (id INT, val INT, grp TEXT)")
    if values:
        rows = ", ".join(
            f"({index}, {value}, '{'ab'[index % 2]}')" for index, value in enumerate(values)
        )
        database.execute(f"INSERT INTO t (id, val, grp) VALUES {rows}")
    return database


values_strategy = st.lists(st.integers(min_value=-100, max_value=100), min_size=0, max_size=30)


class TestFilterProperties:
    @given(values=values_strategy, threshold=st.integers(min_value=-100, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_filter_matches_python_semantics(self, values, threshold):
        database = _make_db(values)
        rows = database.query(f"SELECT val FROM t WHERE val > {threshold}")
        assert sorted(row[0] for row in rows) == sorted(v for v in values if v > threshold)

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_where_true_returns_everything(self, values):
        database = _make_db(values)
        assert len(database.query("SELECT * FROM t WHERE 1 = 1")) == len(values)

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_filter_result_is_subset(self, values):
        database = _make_db(values)
        filtered = database.query("SELECT val FROM t WHERE val >= 0")
        assert len(filtered) <= len(values)


class TestAggregateProperties:
    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_count_matches_length(self, values):
        database = _make_db(values)
        assert database.query("SELECT COUNT(*) FROM t")[0][0] == len(values)

    @given(values=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_sum_avg_min_max_match_python(self, values):
        database = _make_db(values)
        row = database.query("SELECT SUM(val), AVG(val), MIN(val), MAX(val) FROM t")[0]
        assert row[0] == sum(values)
        assert abs(row[1] - sum(values) / len(values)) < 1e-9
        assert row[2] == min(values)
        assert row[3] == max(values)

    @given(values=st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_group_by_partitions_rows(self, values):
        database = _make_db(values)
        groups = database.query("SELECT grp, COUNT(*) FROM t GROUP BY grp")
        assert sum(count for _, count in groups) == len(values)
        assert len(groups) <= 2


class TestOrderingAndLimitProperties:
    @given(values=values_strategy, limit=st.integers(min_value=0, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_limit_bounds_result_size(self, values, limit):
        database = _make_db(values)
        rows = database.query(f"SELECT val FROM t LIMIT {limit}")
        assert len(rows) == min(limit, len(values))

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_order_by_sorts(self, values):
        database = _make_db(values)
        rows = [row[0] for row in database.query("SELECT val FROM t ORDER BY val ASC")]
        assert rows == sorted(values)

    @given(values=values_strategy)
    @settings(max_examples=50, deadline=None)
    def test_distinct_removes_duplicates(self, values):
        database = _make_db(values)
        rows = [row[0] for row in database.query("SELECT DISTINCT val FROM t")]
        assert sorted(rows) == sorted(set(values))

    @given(values=values_strategy)
    @settings(max_examples=30, deadline=None)
    def test_union_all_counts_add(self, values):
        database = _make_db(values)
        total = database.query("SELECT val FROM t UNION ALL SELECT val FROM t")
        assert len(total) == 2 * len(values)
