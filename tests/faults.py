"""Fault-injection helpers for the durability test-suite and benchmarks.

These simulate the failure modes the durable service must survive:

* :class:`InjectedCrash` — sudden process death.  Deliberately a
  ``BaseException`` subclass so the service's fault-*isolation* machinery
  (which catches ``Exception`` to quarantine bad jobs) can never swallow a
  simulated crash: a crash kills the process, full stop.
* :class:`CrashingJournal` — an :class:`~repro.core.journal.EventJournal`
  that dies at a chosen append, either *at the commit boundary* (the record
  never reaches the file) or *mid-write* (a torn prefix of the record's bytes
  lands on disk — the exact case the length+CRC framing must detect).
* :class:`FlakyLLM` / :class:`SlowLLM` — wrappers over a real client that
  inject transient failures and latency, for exercising the retry/backoff/
  timeout discipline in :mod:`repro.llm.base`.
"""

from __future__ import annotations

import json
import time
import zlib
from pathlib import Path

import errno as errno_module

from repro.core.journal import _HEADER, EventJournal
from repro.errors import DiskFaultError, TransientLLMError
from repro.llm.base import GenerationResult, LLMClient
from repro.llm.prompts import Prompt


class InjectedCrash(BaseException):
    """Simulated process death at an injected fault point.

    BaseException (not Exception) on purpose: generic error isolation must
    not be able to catch it, just as no ``except Exception`` survives a
    ``kill -9``.
    """


def encode_record(event_type: str, payload: dict) -> bytes:
    """The exact on-disk bytes :meth:`EventJournal.append` would write."""
    data = json.dumps(
        {"type": event_type, "payload": payload}, separators=(",", ":")
    ).encode("utf-8")
    return _HEADER.pack(len(data), zlib.crc32(data) & 0xFFFFFFFF) + data


class CrashingJournal(EventJournal):
    """Journal that raises :class:`InjectedCrash` at append ``crash_after``.

    ``crash_after`` counts appends 1-based: ``crash_after=3`` means appends
    1 and 2 succeed and append 3 dies.  With ``torn_bytes`` set, the dying
    append first writes that many bytes of the record (a torn tail) before
    "the process dies" — modelling a crash mid-``write``.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "batch",
        crash_after: int | None = None,
        torn_bytes: int | None = None,
    ) -> None:
        super().__init__(path, fsync=fsync)
        self.crash_after = crash_after
        self.torn_bytes = torn_bytes
        self.appends_attempted = 0

    def append(self, event_type: str, payload: dict) -> int:
        # Take the journal's (re-entrant) lock for the whole fault decision,
        # torn write and write-through, so the injected fault stays atomic
        # even when concurrent drain workers append from several threads:
        # the attempt counter never races and a torn prefix can't interleave
        # with another thread's whole record.  Once the crash point is
        # reached, *every* subsequent append from any thread dies too — a
        # crashed process does not keep journaling.
        with self._lock:
            self.appends_attempted += 1
            if self.crash_after is not None and self.appends_attempted >= self.crash_after:
                # Only the append that first crosses the crash point tears the
                # tail; later appends (other drain workers) just die, exactly
                # like threads of an already-dead process.
                if self.torn_bytes is not None and self.appends_attempted == self.crash_after:
                    record = encode_record(event_type, payload)
                    self._handle.write(record[: self.torn_bytes])
                    self._handle.flush()
                raise InjectedCrash(
                    f"injected crash at append #{self.appends_attempted} "
                    f"({event_type}, torn_bytes={self.torn_bytes})"
                )
            offset = super().append(event_type, payload)
            # Write through after every surviving append.  Group commit buffers
            # appends in userspace, so a real crash loses everything since the
            # last commit — always legal, but it would make every clean-crash
            # sweep recover from an *empty* prefix.  Flushing here pins the
            # richest durable prefix the scanner can ever face, so the sweep
            # exercises recovery at every record boundary.
            self._handle.flush()
            return offset


class DiskFaultJournal(EventJournal):
    """Journal whose appends hit an OS-level disk fault from ``fail_at`` on.

    ``fail_at`` counts appends 1-based, like :class:`CrashingJournal`; every
    append at or past it raises :class:`~repro.errors.DiskFaultError`
    (default errno ENOSPC — the disk stays full).  Surviving appends are
    flushed through so the durable prefix is exactly the successful ones.
    """

    def __init__(
        self,
        path: str | Path,
        fsync: str = "batch",
        fail_at: int | None = None,
        errno_value: int = errno_module.ENOSPC,
    ) -> None:
        super().__init__(path, fsync=fsync)
        self.fail_at = fail_at
        self.errno_value = errno_value
        self.appends_attempted = 0

    def append(self, event_type: str, payload: dict) -> int:
        with self._lock:
            self.appends_attempted += 1
            if self.fail_at is not None and self.appends_attempted >= self.fail_at:
                raise DiskFaultError(
                    f"injected disk fault at append #{self.appends_attempted} "
                    f"({event_type})",
                    errno_value=self.errno_value,
                )
            offset = super().append(event_type, payload)
            self._handle.flush()
            return offset


class FlakyLLM(LLMClient):
    """Wrapper that fails the first ``fail_times`` calls, then delegates.

    Failures are transient (:class:`~repro.errors.TransientLLMError`) by
    default; pass ``error_factory`` to inject terminal errors instead.
    ``generate`` and ``generate_batch`` share one failure budget, matching a
    backend outage that hits whichever endpoint is called next.
    """

    def __init__(self, inner: LLMClient, fail_times: int = 1, error_factory=None) -> None:
        self.inner = inner
        self.name = inner.name
        self.fail_times = fail_times
        self.error_factory = error_factory or (
            lambda n: TransientLLMError(f"injected transient failure #{n}")
        )
        self.calls = 0
        self.failures_injected = 0

    @property
    def example_content_sensitive(self) -> bool:  # type: ignore[override]
        return self.inner.example_content_sensitive

    def _maybe_fail(self) -> None:
        self.calls += 1
        if self.failures_injected < self.fail_times:
            self.failures_injected += 1
            raise self.error_factory(self.failures_injected)

    def generate(self, prompt: Prompt) -> GenerationResult:
        self._maybe_fail()
        return self.inner.generate(prompt)

    def generate_batch(self, prompts: list[Prompt]) -> list[GenerationResult]:
        self._maybe_fail()
        return self.inner.generate_batch(prompts)

    def backtranslate(self, description: str, schema_text: str = "") -> str | None:
        return self.inner.backtranslate(description, schema_text)


class SlowLLM(LLMClient):
    """Wrapper that sleeps before every call — for timeout-budget tests."""

    def __init__(self, inner: LLMClient, delay_seconds: float) -> None:
        self.inner = inner
        self.name = inner.name
        self.delay_seconds = delay_seconds

    @property
    def example_content_sensitive(self) -> bool:  # type: ignore[override]
        return self.inner.example_content_sensitive

    def generate(self, prompt: Prompt) -> GenerationResult:
        time.sleep(self.delay_seconds)
        return self.inner.generate(prompt)

    def generate_batch(self, prompts: list[Prompt]) -> list[GenerationResult]:
        time.sleep(self.delay_seconds)
        return self.inner.generate_batch(prompts)

    def backtranslate(self, description: str, schema_text: str = "") -> str | None:
        return self.inner.backtranslate(description, schema_text)
