"""Compiled/interpreted/planned parity suite.

Runs every query the workload generator produces — plus a battery of join
edge cases — through all three executor modes and asserts *bit-identical*
results: same columns, same rows in the same order, same Python value types
cell-for-cell.  This is the contract the compiled and planned hot paths must
uphold: they may only be faster than the interpreter, never different.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.errors import ExecutionError, ReproError

#: The interpreter is the semantic reference; the other two must match it.
PARITY_MODES = ("interpreted", "compiled", "planned")


def run_all_modes(database: Database, sql: str) -> dict:
    """Execute ``sql`` in every executor mode on one database.

    Returns a mode -> outcome dict where each outcome is either a
    QueryResult or the raised engine error.
    """
    outcomes = {}
    original_mode = database.executor_mode
    try:
        for mode in PARITY_MODES:
            database.executor_mode = mode
            try:
                outcomes[mode] = database.execute(sql)
            except ReproError as exc:
                outcomes[mode] = exc
    finally:
        database.executor_mode = original_mode
    return outcomes


def run_both_modes(database: Database, sql: str):
    """Back-compat helper: ``(compiled, interpreted)`` outcomes."""
    outcomes = run_all_modes(database, sql)
    return outcomes["compiled"], outcomes["interpreted"]


def assert_parity(database: Database, sql: str) -> None:
    """Assert every mode produces bit-identical results (or every mode fails)."""
    outcomes = run_all_modes(database, sql)
    reference = outcomes["interpreted"]
    for mode in PARITY_MODES:
        if mode == "interpreted":
            continue
        outcome = outcomes[mode]
        if isinstance(reference, Exception):
            assert isinstance(outcome, Exception), (
                f"interpreted raised {reference!r} but {mode} succeeded for: {sql}"
            )
            continue
        assert not isinstance(outcome, Exception), (
            f"{mode} raised {outcome!r} but interpreted succeeded for: {sql}"
        )
        assert outcome.columns == reference.columns, f"[{mode}] {sql}"
        assert len(outcome.rows) == len(reference.rows), f"[{mode}] {sql}"
        for mode_row, reference_row in zip(outcome.rows, reference.rows):
            assert mode_row == reference_row, f"[{mode}] {sql}"
            assert [type(value) for value in mode_row] == [
                type(value) for value in reference_row
            ], f"value types diverge in {mode} for: {sql}"


# ---------------------------------------------------------------------------
# generated workloads: every query through both paths
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workload_fixture", ["tiny_spider", "tiny_beaver", "tiny_bird"])
def test_generated_workload_parity(workload_fixture, request):
    workload = request.getfixturevalue(workload_fixture)
    assert workload.queries, "workload generated no queries"
    for query in workload.queries:
        assert_parity(workload.database, query.sql)


# ---------------------------------------------------------------------------
# join edge cases
# ---------------------------------------------------------------------------


@pytest.fixture()
def join_database() -> Database:
    """Two small tables with duplicated column names and NULL join keys."""
    database = Database("joins")
    database.execute(
        "CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT, region_id INT, amount REAL, status TEXT)"
    )
    database.execute(
        "CREATE TABLE customers (id INT PRIMARY KEY, region_id INT, name TEXT, tier TEXT)"
    )
    database.execute(
        "INSERT INTO customers (id, region_id, name, tier) VALUES "
        "(1, 10, 'Acme', 'gold'), (2, 20, 'Globex', 'silver'), "
        "(3, NULL, 'Initech', 'gold'), (4, 10, 'Umbrella', 'bronze')"
    )
    database.execute(
        "INSERT INTO orders (id, customer_id, region_id, amount, status) VALUES "
        "(100, 1, 10, 250.0, 'open'), (101, 1, 20, 80.0, 'closed'), "
        "(102, 2, 20, 99.5, 'open'), (103, NULL, 10, 10.0, 'open'), "
        "(104, 3, NULL, 500.0, 'closed'), (105, 9, 99, 1.0, 'open')"
    )
    return database


JOIN_EDGE_QUERIES = [
    # single-key equi joins (compiled and interpreted both hash)
    "SELECT o.id, c.name FROM orders o JOIN customers c ON o.customer_id = c.id",
    "SELECT o.id, c.name FROM orders o LEFT JOIN customers c ON o.customer_id = c.id",
    # multi-key AND-of-equalities: compiled hash join vs interpreted nested loop
    "SELECT o.id, c.name FROM orders o JOIN customers c "
    "ON o.customer_id = c.id AND o.region_id = c.region_id",
    "SELECT o.id, c.name FROM orders o LEFT JOIN customers c "
    "ON o.customer_id = c.id AND o.region_id = c.region_id",
    "SELECT o.id, c.name FROM orders o RIGHT JOIN customers c "
    "ON o.customer_id = c.id AND o.region_id = c.region_id",
    "SELECT o.id, c.name FROM orders o FULL JOIN customers c "
    "ON o.customer_id = c.id AND o.region_id = c.region_id",
    # equality keys mixed with a non-equality residual conjunct
    "SELECT o.id, c.name FROM orders o JOIN customers c "
    "ON o.customer_id = c.id AND o.amount > 50",
    "SELECT o.id, c.name FROM orders o LEFT JOIN customers c "
    "ON o.customer_id = c.id AND c.tier = 'gold' AND o.amount > 50",
    "SELECT o.id, c.name FROM orders o FULL JOIN customers c "
    "ON o.customer_id = c.id AND c.tier = 'gold'",
    # ambiguous unqualified column (id and region_id exist on both sides)
    "SELECT o.id FROM orders o JOIN customers c ON customer_id = id",
    # NULL keys on both sides must never match
    "SELECT o.id, c.id FROM orders o JOIN customers c ON o.region_id = c.region_id",
    "SELECT o.id, c.id FROM orders o FULL JOIN customers c ON o.region_id = c.region_id",
    # USING join
    "SELECT o.id, c.name FROM orders o JOIN customers c USING (region_id)",
    # cross join via condition-free nested loop
    "SELECT COUNT(*) FROM orders CROSS JOIN customers",
    # non-equality-only condition: nested loop in both modes
    "SELECT o.id, c.id FROM orders o JOIN customers c ON o.amount > c.id * 50",
    # join feeding aggregation / ordering
    "SELECT c.tier, COUNT(*), SUM(o.amount) FROM orders o "
    "JOIN customers c ON o.customer_id = c.id GROUP BY c.tier "
    "HAVING COUNT(*) >= 1 ORDER BY 3 DESC",
]


@pytest.mark.parametrize("sql", JOIN_EDGE_QUERIES)
def test_join_edge_case_parity(join_database, sql):
    assert_parity(join_database, sql)


def test_multi_key_join_uses_hash_path(join_database):
    """The AND-of-equalities condition must produce correct multi-key matches."""
    join_database.executor_mode = "compiled"
    result = join_database.execute(
        "SELECT o.id, c.name FROM orders o JOIN customers c "
        "ON o.customer_id = c.id AND o.region_id = c.region_id ORDER BY o.id"
    )
    # orders 100/102 match their customer on both keys; 101 matches on id but
    # not region; 104 has a NULL region key and must not match customer 3's NULL.
    assert result.rows == [(100, "Acme"), (102, "Globex")]


def test_cross_type_multi_key_join_parity():
    """Join-key equality is bucket equality in every mode and join strategy:
    values are normalised via hashable_key and compared with Python ``==``,
    so ``1`` never joins ``'1'`` — exactly like the single-key hash path —
    and multi-key conditions stay on the hash plan regardless of types."""
    database = Database("cross-type")
    database.create_table("t1", [("a", "INT"), ("b", "TEXT")])
    database.create_table("t2", [("c", "TEXT"), ("d", "TEXT")])
    database.table("t1").insert_rows([(1, "x"), (2, "y")])
    database.table("t2").insert_rows([("1", "x"), ("2", "z")])
    multi = "SELECT * FROM t1 JOIN t2 ON t1.a = t2.c AND t1.b = t2.d"
    single = "SELECT * FROM t1 JOIN t2 ON t1.a = t2.c"
    assert_parity(database, multi)
    assert_parity(database, single)
    for mode in PARITY_MODES:
        database.executor_mode = mode
        # INT 1 and TEXT '1' hash apart, in multi-key and single-key joins alike.
        assert database.execute(multi).rows == []
        assert database.execute(single).rows == []


def test_integral_float_keys_join_across_types():
    """hashable_key folds integral floats to int, so 1.0 joins 1 everywhere."""
    database = Database("float-keys")
    database.create_table("t1", [("a", "INT"), ("b", "INT")])
    database.create_table("t2", [("c", "REAL"), ("d", "INT")])
    database.table("t1").insert_rows([(1, 5), (2, 6)])
    database.table("t2").insert_rows([(1.0, 5), (2.0, 7)])
    sql = "SELECT t1.a, t2.d FROM t1 JOIN t2 ON t1.a = t2.c AND t1.b = t2.d"
    assert_parity(database, sql)
    database.executor_mode = "compiled"
    assert database.execute(sql).rows == [(1, 5)]


def test_homogeneous_multi_key_join_still_hashes(join_database):
    """Type-safe key columns keep the fast path; results stay identical."""
    sql = (
        "SELECT o.id, c.name FROM orders o JOIN customers c "
        "ON o.customer_id = c.id AND o.region_id = c.region_id"
    )
    assert_parity(join_database, sql)


def test_right_and_full_unmatched_rows(join_database):
    join_database.executor_mode = "compiled"
    full = join_database.execute(
        "SELECT o.id, c.id FROM orders o FULL JOIN customers c "
        "ON o.customer_id = c.id AND o.region_id = c.region_id"
    )
    left_ids = {row[0] for row in full.rows}
    right_ids = {row[1] for row in full.rows}
    # every unmatched order appears null-padded on the right...
    assert left_ids >= {100, 101, 102, 103, 104, 105}
    # ...and every unmatched customer appears null-padded on the left.
    assert right_ids >= {1, 2, 3, 4}
    assert (100, 1) in full.rows
    assert (101, None) in full.rows
    assert (None, 3) in full.rows
    assert (None, 4) in full.rows


# ---------------------------------------------------------------------------
# expression / clause parity on a hand-built database
# ---------------------------------------------------------------------------


EXPRESSION_QUERIES = [
    "SELECT name, salary * 1.1 FROM employees WHERE salary > 80000",
    "SELECT name FROM employees WHERE dept_id IS NULL",
    "SELECT name FROM employees WHERE dept_id IS NOT NULL AND salary BETWEEN 70000 AND 130000",
    "SELECT name FROM employees WHERE name LIKE 'A%' OR name LIKE '%k'",
    "SELECT name FROM employees WHERE dept_id IN (1, 3)",
    "SELECT name FROM employees WHERE dept_id NOT IN (1, 3)",
    "SELECT UPPER(name), LENGTH(name) FROM employees ORDER BY 2 DESC, 1 ASC",
    "SELECT CASE WHEN salary >= 100000 THEN 'high' WHEN salary >= 80000 THEN 'mid' ELSE 'low' END AS band, name FROM employees ORDER BY band, name",
    "SELECT CAST(salary AS INT) FROM employees ORDER BY 1",
    "SELECT dept_id, COUNT(*), AVG(salary) FROM employees GROUP BY dept_id HAVING COUNT(*) > 1",
    "SELECT COUNT(DISTINCT dept_id) FROM employees",
    "SELECT name FROM employees WHERE salary > (SELECT AVG(salary) FROM employees)",
    "SELECT name FROM employees e WHERE EXISTS (SELECT 1 FROM departments d WHERE d.dept_id = e.dept_id AND d.budget > 250000)",
    "SELECT name FROM employees WHERE dept_id IN (SELECT dept_id FROM departments WHERE budget >= 300000)",
    "SELECT d.dept_name, (SELECT COUNT(*) FROM employees e WHERE e.dept_id = d.dept_id) AS headcount FROM departments d ORDER BY headcount DESC, dept_name",
    "SELECT DISTINCT dept_id FROM employees ORDER BY dept_id",
    "SELECT name FROM employees ORDER BY salary DESC LIMIT 2 OFFSET 1",
    "SELECT name FROM employees WHERE salary > 100000 UNION SELECT dept_name FROM departments ORDER BY 1",
    "SELECT dept_id FROM employees INTERSECT SELECT dept_id FROM departments",
    "SELECT dept_id FROM departments EXCEPT SELECT dept_id FROM employees WHERE dept_id IS NOT NULL",
    "WITH rich AS (SELECT dept_id, COUNT(*) AS n FROM employees WHERE salary > 80000 GROUP BY dept_id) SELECT * FROM rich ORDER BY n DESC",
    "SELECT name || '-' || dept_id FROM employees WHERE dept_id IS NOT NULL ORDER BY 1",
    "SELECT -salary, +salary, NOT (salary > 90000) FROM employees ORDER BY 1",
    "SELECT COALESCE(dept_id, -1), IFNULL(dept_id, 0) FROM employees ORDER BY 1",
    "SELECT salary / 0 FROM employees",
    "SELECT salary % 2 FROM employees ORDER BY 1",
]


@pytest.mark.parametrize("sql", EXPRESSION_QUERIES)
def test_expression_parity(hr_database, sql):
    assert_parity(hr_database, sql)


def test_error_parity_for_bad_queries(hr_database):
    for sql in (
        "SELECT nope FROM employees",
        "SELECT UNKNOWN_FN(salary) FROM employees",
        "SELECT * FROM missing_table",
        "SELECT SUM(salary) FROM employees WHERE SUM(salary) > 1",
    ):
        outcomes = run_all_modes(hr_database, sql)
        reference = outcomes["interpreted"]
        assert isinstance(reference, ReproError), sql
        for mode in PARITY_MODES:
            assert isinstance(outcomes[mode], ReproError), f"[{mode}] {sql}"
            assert type(outcomes[mode]) is type(reference), f"[{mode}] {sql}"
            assert str(outcomes[mode]) == str(reference), f"[{mode}] {sql}"


def test_parity_after_dml(hr_database):
    """Caches must not leak stale results into either mode after inserts."""
    sql = "SELECT dept_id, COUNT(*) FROM employees GROUP BY dept_id"
    assert_parity(hr_database, sql)
    hr_database.execute(
        "INSERT INTO employees (emp_id, name, salary, dept_id, hire_date) VALUES "
        "(7, 'Grace', 101000, 3, '2023-01-01')"
    )
    assert_parity(hr_database, sql)
    compiled, _ = run_both_modes(hr_database, "SELECT COUNT(*) FROM employees")
    assert compiled.rows == [(7,)]


def test_using_join_missing_column_raises_execution_error(hr_database):
    """Regression: a USING column absent from one side must raise a proper
    ExecutionError naming the column, not a bare StopIteration."""
    with pytest.raises(ExecutionError, match="USING column 'budget'.*left side"):
        hr_database.execute(
            "SELECT * FROM employees JOIN departments USING (budget)"
        )
    hr_database.executor_mode = "interpreted"
    with pytest.raises(ExecutionError, match="USING column 'budget'"):
        hr_database.execute(
            "SELECT * FROM employees JOIN departments USING (budget)"
        )
