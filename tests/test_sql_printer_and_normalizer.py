"""Printer round-trip and normaliser tests, including property-based checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sql import (
    normalize_sql,
    parse,
    parse_select,
    print_select,
    print_statement,
    queries_equal,
    query_skeleton,
    lexical_normalize,
)

ROUND_TRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT DISTINCT a, b AS alias FROM t WHERE a > 5 AND b = 'x'",
    "SELECT COUNT(*), MAX(a) FROM t GROUP BY b HAVING COUNT(*) > 1",
    "SELECT a FROM t ORDER BY a DESC LIMIT 10 OFFSET 2",
    "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id",
    "SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE c = 1)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 10 OR b LIKE 'x%'",
    "WITH x AS (SELECT a FROM t) SELECT * FROM x",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
    "SELECT CAST(a AS INT) FROM t",
    "SELECT (SELECT MAX(b) FROM u) AS top, a FROM t",
    "SELECT a FROM t WHERE a IS NOT NULL AND b NOT IN (1, 2)",
    "SELECT t.* FROM t CROSS JOIN u",
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_print_parse_is_fixed_point(self, sql):
        first = print_select(parse_select(sql))
        second = print_select(parse_select(first))
        assert first == second

    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_round_trip_preserves_equality(self, sql):
        assert queries_equal(sql, print_select(parse_select(sql)))

    def test_print_create_table_round_trip(self):
        sql = "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(50) NOT NULL)"
        printed = print_statement(parse(sql))
        reprinted = print_statement(parse(printed))
        assert printed == reprinted

    def test_print_insert_round_trip(self):
        sql = "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)"
        printed = print_statement(parse(sql))
        assert print_statement(parse(printed)) == printed

    def test_string_escaping_survives(self):
        sql = "SELECT a FROM t WHERE name = 'O''Brien'"
        printed = print_select(parse_select(sql))
        assert "O''Brien" in printed
        assert print_select(parse_select(printed)) == printed


class TestNormalizer:
    def test_whitespace_and_case_insensitive(self):
        assert queries_equal("select  a from T", "SELECT a FROM T")

    def test_different_queries_not_equal(self):
        assert not queries_equal("SELECT a FROM t", "SELECT b FROM t")

    def test_comments_removed(self):
        assert queries_equal("SELECT a FROM t -- comment", "SELECT a FROM t")

    def test_lexical_normalize_handles_unparseable(self):
        text = lexical_normalize("SELECT something UPDATE weird")
        assert "SELECT" in text

    def test_normalize_sql_falls_back_on_parse_failure(self):
        # Not valid in our dialect but should still be normalised lexically.
        result = normalize_sql("SELCT a FROM t")
        assert isinstance(result, str) and result

    def test_query_skeleton_masks_literals(self):
        left = query_skeleton("SELECT a FROM t WHERE b = 'x' AND c > 5")
        right = query_skeleton("SELECT a FROM t WHERE b = 'y' AND c > 99")
        assert left == right

    def test_query_skeleton_differs_for_structure(self):
        assert query_skeleton("SELECT a FROM t") != query_skeleton("SELECT a, b FROM t")


_identifier = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


class TestPropertyBased:
    @given(
        columns=st.lists(_identifier, min_size=1, max_size=4, unique=True),
        table=_identifier,
        value=st.integers(min_value=-1000, max_value=1000),
        use_distinct=st.booleans(),
        limit=st.one_of(st.none(), st.integers(min_value=1, max_value=100)),
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_selects_round_trip(self, columns, table, value, use_distinct, limit):
        distinct = "DISTINCT " if use_distinct else ""
        limit_clause = f" LIMIT {limit}" if limit else ""
        sql = (
            f"SELECT {distinct}{', '.join(columns)} FROM {table} "
            f"WHERE {columns[0]} > {value}{limit_clause}"
        )
        printed = print_select(parse_select(sql))
        assert print_select(parse_select(printed)) == printed

    @given(st.integers(min_value=-10**6, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_integer_literals_preserved(self, number):
        printed = print_select(parse_select(f"SELECT {number}"))
        assert str(number) in printed

    @given(st.text(alphabet="abc XYZ'", max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_string_literals_roundtrip_through_printer(self, text):
        escaped = text.replace("'", "''")
        sql = f"SELECT '{escaped}'"
        select = parse_select(sql)
        from repro.sql import Literal

        literal = select.select_items[0].expression
        assert isinstance(literal, Literal)
        assert literal.value == text
        assert print_select(parse_select(print_select(select))) == print_select(select)
