"""Tests for embeddings, the vector store, example store and context retriever."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RetrievalError
from repro.retrieval import (
    ContextRetriever,
    EmbeddingModel,
    ExampleStore,
    ShardedVectorStore,
    VectorStore,
    character_ngrams,
    cosine_similarity,
    normalize_whitespace,
    sentence_case,
    tokenize_text,
)


class TestText:
    def test_tokenize_splits_identifiers(self):
        assert tokenize_text("MOIRA_LIST_NAME equals 'EECS'") == [
            "moira", "list", "name", "equals", "eecs",
        ]

    def test_tokenize_removes_stopwords_optionally(self):
        tokens = tokenize_text("the count of the rows", remove_stopwords=True)
        assert "the" not in tokens and "of" not in tokens

    def test_character_ngrams(self):
        assert character_ngrams("abcd", 3) == ["abc", "bcd"]
        assert character_ngrams("ab", 3) == ["ab"]
        assert character_ngrams("", 3) == []

    def test_normalize_whitespace(self):
        assert normalize_whitespace("  a\n b\t c ") == "a b c"

    def test_sentence_case(self):
        assert sentence_case("hello world") == "Hello world."
        assert sentence_case("Already done.") == "Already done."
        assert sentence_case("") == ""


class TestEmbeddingModel:
    def test_embeddings_are_normalised(self):
        model = EmbeddingModel(dimensions=64)
        vector = model.embed("SELECT a FROM t")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_embeds_to_zero(self):
        assert np.allclose(EmbeddingModel().embed(""), 0.0)

    def test_similar_texts_score_higher_than_dissimilar(self):
        model = EmbeddingModel()
        for text in ("student enrollment per term", "employee salary by department",
                     "network device inventory"):
            model.observe(text)
        query = model.embed("student enrollment for the fall term")
        similar = model.embed("student enrollment per term")
        dissimilar = model.embed("network device inventory")
        assert cosine_similarity(query, similar) > cosine_similarity(query, dissimilar)

    def test_deterministic(self):
        left = EmbeddingModel().embed("SELECT a FROM t")
        right = EmbeddingModel().embed("SELECT a FROM t")
        assert np.allclose(left, right)

    def test_embed_batch_shape(self):
        model = EmbeddingModel(dimensions=32)
        batch = model.embed_batch(["a", "b", "c"])
        assert batch.shape == (3, 32)
        assert model.embed_batch([]).shape == (0, 32)

    @given(st.text(alphabet="abcdef ", min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_embedding_norm_is_at_most_one(self, text):
        vector = EmbeddingModel(dimensions=32).embed(text)
        assert np.linalg.norm(vector) <= 1.0 + 1e-9


class TestVectorStore:
    def test_add_search_roundtrip(self):
        store = VectorStore()
        store.add("1", "count students per term", {"dataset": "beaver"})
        store.add("2", "average salary per department", {"dataset": "hr"})
        hits = store.search("how many students in each term", top_k=1)
        assert hits[0].doc_id == "1"

    def test_metadata_filter(self):
        store = VectorStore()
        store.add("1", "count students", {"dataset": "a"})
        store.add("2", "count students", {"dataset": "b"})
        hits = store.search("count students", metadata_filter={"dataset": "b"})
        assert [hit.doc_id for hit in hits] == ["2"]

    def test_exclude_ids(self):
        store = VectorStore()
        store.add("1", "alpha beta")
        store.add("2", "alpha beta")
        hits = store.search("alpha beta", exclude_ids={"1"})
        assert [hit.doc_id for hit in hits] == ["2"]

    def test_remove_and_get(self):
        store = VectorStore()
        store.add("1", "text")
        assert store.get("1").text == "text"
        store.remove("1")
        assert "1" not in store
        with pytest.raises(RetrievalError):
            store.get("1")
        with pytest.raises(RetrievalError):
            store.remove("1")

    def test_empty_doc_id_rejected(self):
        with pytest.raises(RetrievalError):
            VectorStore().add("", "text")

    def test_top_k_zero_returns_empty(self):
        store = VectorStore()
        store.add("1", "text")
        assert store.search("text", top_k=0) == []


class TestExampleStore:
    def test_cold_start_is_empty(self):
        store = ExampleStore()
        assert store.is_empty
        assert store.retrieve("SELECT a FROM t") == []

    def test_add_and_retrieve(self):
        store = ExampleStore()
        store.add("SELECT COUNT(*) FROM students", "How many students are there?", dataset="beaver")
        store.add("SELECT AVG(salary) FROM employees", "What is the average salary?", dataset="hr")
        results = store.retrieve("SELECT COUNT(*) FROM students WHERE term = 'fall'", top_k=1)
        assert results[0].nl == "How many students are there?"

    def test_identical_skeleton_excluded(self):
        store = ExampleStore()
        store.add("SELECT a FROM t WHERE b = 'x'", "description one")
        assert store.retrieve("SELECT a FROM t WHERE b = 'y'") == []
        assert len(store.retrieve("SELECT a FROM t WHERE b = 'y'", exclude_identical=False)) == 1

    def test_rejects_empty_fields(self):
        with pytest.raises(RetrievalError):
            ExampleStore().add("", "text")
        with pytest.raises(RetrievalError):
            ExampleStore().add("SELECT 1", "   ")

    def test_seed_from_pairs(self):
        store = ExampleStore()
        assert store.seed_from_pairs([("SELECT 1", "one"), ("SELECT 2", "two")]) == 2
        assert len(store) == 2

    def test_dataset_filter(self):
        store = ExampleStore()
        store.add("SELECT a FROM students", "students a", dataset="beaver")
        store.add("SELECT a FROM singers", "singers a", dataset="spider")
        results = store.retrieve("SELECT b FROM students", dataset="beaver")
        assert all(example.dataset == "beaver" for example in results)

    def test_get_unknown_raises(self):
        with pytest.raises(RetrievalError):
            ExampleStore().get("missing")


class TestContextRetriever:
    def test_retrieves_relevant_tables_via_sql(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        context = retriever.retrieve("SELECT name FROM employees WHERE salary > 10")
        assert context.table_names == ["employees"]
        assert "TABLE employees" in context.schema_text()

    def test_retrieves_joined_tables(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        context = retriever.retrieve(
            "SELECT e.name, d.dept_name FROM employees e JOIN departments d ON e.dept_id = d.dept_id"
        )
        assert set(context.table_names) == {"employees", "departments"}
        assert "dept_id" in context.ambiguous_columns

    def test_examples_accumulate_and_are_retrieved(self, hr_schema):
        retriever = ContextRetriever(hr_schema, top_k_examples=2)
        retriever.record_annotation("SELECT COUNT(*) FROM employees", "How many employees?")
        context = retriever.retrieve("SELECT COUNT(*) FROM employees WHERE dept_id = 1")
        assert len(context.examples) == 1
        assert context.examples[0].nl == "How many employees?"

    def test_unknown_table_reported(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        context = retriever.retrieve("SELECT x FROM payroll_history")
        assert "payroll_history" in context.unresolved_tables

    def test_unparseable_query_falls_back_to_text_linking(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        context = retriever.retrieve("employees salary report !!!")
        assert "employees" in context.table_names


def _reference_search(store, query, top_k=5, metadata_filter=None, exclude_ids=None,
                      min_score=0.0):
    """The pre-vectorisation O(n) reference loop, for ranking-parity checks."""
    query_vector = store.model.embed(query)
    hits = []
    for doc_id in store.all_ids():
        entry = store.get(doc_id)
        if exclude_ids and entry.doc_id in exclude_ids:
            continue
        if metadata_filter and any(
            entry.metadata.get(key) != value for key, value in metadata_filter.items()
        ):
            continue
        score = float(np.dot(query_vector, entry.vector))
        if score < min_score:
            continue
        hits.append((entry.doc_id, score))
    hits.sort(key=lambda hit: (-hit[1], hit[0]))
    return hits[:top_k]


class TestVectorizedStore:
    """The matrix/argpartition search must rank exactly like the old loop."""

    TEXTS = [
        ("d01", "count students per term", {"dataset": "beaver"}),
        ("d02", "average salary per department", {"dataset": "hr"}),
        ("d03", "count students per campus", {"dataset": "beaver"}),
        ("d04", "network device inventory report", {"dataset": "it"}),
        ("d05", "count students per term", {"dataset": "beaver"}),  # exact dup of d01
        ("d06", "salary of employees by department", {"dataset": "hr"}),
        ("d07", "list open purchase orders", {"dataset": "erp"}),
        ("d08", "terms with highest enrollment", {"dataset": "beaver"}),
    ]

    def _store(self):
        store = VectorStore()
        for doc_id, text, metadata in self.TEXTS:
            store.add(doc_id, text, metadata)
        return store

    def _assert_matches_reference(self, store, query, **kwargs):
        hits = store.search(query, **kwargs)
        expected = _reference_search(store, query, **kwargs)
        assert [(hit.doc_id, pytest.approx(hit.score)) for hit in hits] == [
            (doc_id, pytest.approx(score)) for doc_id, score in expected
        ]

    def test_ranking_matches_reference(self):
        store = self._store()
        self._assert_matches_reference(store, "students enrolled per term", top_k=4)

    def test_ranking_with_metadata_filter(self):
        store = self._store()
        self._assert_matches_reference(
            store, "count students", top_k=3, metadata_filter={"dataset": "beaver"}
        )

    def test_ranking_with_exclude_ids(self):
        store = self._store()
        self._assert_matches_reference(
            store, "count students per term", top_k=4, exclude_ids={"d01", "d03"}
        )

    def test_ranking_with_min_score(self):
        store = self._store()
        self._assert_matches_reference(
            store, "count students per term", top_k=8, min_score=0.2
        )

    def test_tie_break_by_doc_id(self):
        # add_many embeds under one shared vocabulary, so identical texts get
        # bit-identical vectors — a true score tie.
        store = VectorStore()
        store.add_many(
            [
                ("z-dup", "count students per term", {}),
                ("a-dup", "count students per term", {}),
                ("other", "average salary per department", {}),
            ]
        )
        hits = store.search("count students per term", top_k=2)
        assert [hit.doc_id for hit in hits] == ["a-dup", "z-dup"]

    def test_search_batch_matches_scalar_search(self):
        store = self._store()
        queries = ["count students", "salary by department", "purchase orders"]
        batched = store.search_batch(queries, top_k=3)
        for query, hits in zip(queries, batched):
            scalar = store.search(query, top_k=3)
            assert [hit.doc_id for hit in hits] == [hit.doc_id for hit in scalar]
            assert [hit.score for hit in hits] == [
                pytest.approx(hit.score) for hit in scalar
            ]

    def test_search_ids_matches_search(self):
        store = self._store()
        hits = store.search("count students", top_k=4)
        assert store.search_ids("count students", top_k=4) == [hit.doc_id for hit in hits]

    def test_search_after_remove_and_compaction(self):
        store = self._store()
        # Remove enough rows to trigger lazy compaction (threshold is 50%).
        for doc_id in ("d01", "d03", "d05", "d07", "d08"):
            store.remove(doc_id)
        assert len(store) == 3
        self._assert_matches_reference(store, "salary by department", top_k=3)
        # The store keeps working after compaction: add again and search.
        store.add("d09", "salary bands per department", {"dataset": "hr"})
        self._assert_matches_reference(store, "salary bands", top_k=4)

    def test_add_replaces_existing_doc(self):
        store = self._store()
        store.add("d04", "totally different text about invoices", {"dataset": "fin"})
        assert len(store) == len(self.TEXTS)
        hits = store.search("invoices", top_k=1, metadata_filter={"dataset": "fin"})
        assert [hit.doc_id for hit in hits] == ["d04"]

    def test_growth_beyond_initial_capacity(self):
        store = VectorStore()
        for index in range(150):  # > the 64-row initial matrix
            store.add(f"doc-{index:03d}", f"record number {index} of the stress corpus")
        assert len(store) == 150
        hits = store.search("record number 42", top_k=5)
        assert "doc-042" in [hit.doc_id for hit in hits]

    def test_add_many_uses_consistent_vocabulary(self):
        documents = [
            ("a", "count students per term", {}),
            ("b", "average salary per department", {}),
            ("c", "count open tickets per queue", {}),
        ]
        batch_store = VectorStore(EmbeddingModel(dimensions=64))
        batch_store.add_many(documents)

        # Reference: observe every text first, then embed under the final
        # vocabulary — every vector in the batch must match this.
        reference_model = EmbeddingModel(dimensions=64)
        for _, text, _ in documents:
            reference_model.observe(text)
        for doc_id, text, _ in documents:
            np.testing.assert_allclose(
                batch_store.get(doc_id).vector, reference_model.embed(text)
            )

    def test_sequential_add_differs_from_batch_for_early_docs(self):
        # Guards the vocabulary-drift fix: sequential adds embed early docs
        # under a smaller IDF table than add_many does.
        documents = [
            ("a", "count students per term", {}),
            ("b", "average salary per department", {}),
        ]
        sequential = VectorStore(EmbeddingModel(dimensions=64))
        for doc_id, text, metadata in documents:
            sequential.add(doc_id, text, metadata)
        batch = VectorStore(EmbeddingModel(dimensions=64))
        batch.add_many(documents)
        assert not np.allclose(sequential.get("a").vector, batch.get("a").vector)


class TestCompactionFilteredSearch:
    """Filtered search_batch/search_ids right after remove-triggered
    compaction — the meta-mask remap is exactly what these exercise."""

    DATASETS = ["beaver", "hr", "it"]

    def _store(self):
        store = VectorStore()
        for index in range(15):
            dataset = self.DATASETS[index % len(self.DATASETS)]
            store.add(
                f"doc-{index:02d}",
                f"{dataset} corpus record number {index}",
                {"dataset": dataset},
            )
        # Warm every filter's lazy mask *before* compaction so the test
        # covers the mask-remap path rather than a fresh rebuild.
        for dataset in self.DATASETS:
            store.search("record", top_k=2, metadata_filter={"dataset": dataset})
        return store

    def _force_compaction(self, store):
        # 8 removals out of 15 rows: >= 8 dead and > 50% dead, so the last
        # remove triggers lazy compaction.
        for index in range(8):
            store.remove(f"doc-{index:02d}")
        assert store._dead_rows == 0  # compaction actually ran
        assert len(store) == 7

    def test_search_ids_with_filter_after_compaction(self):
        store = self._store()
        self._force_compaction(store)
        for dataset in self.DATASETS:
            expected = _reference_search(
                store, "corpus record", top_k=5, metadata_filter={"dataset": dataset}
            )
            assert store.search_ids(
                "corpus record", top_k=5, metadata_filter={"dataset": dataset}
            ) == [doc_id for doc_id, _ in expected]

    def test_search_batch_with_filter_after_compaction(self):
        store = self._store()
        self._force_compaction(store)
        queries = ["corpus record", "record number 10", "record number 14"]
        for dataset in self.DATASETS:
            batched = store.search_batch(
                queries, top_k=4, metadata_filter={"dataset": dataset}
            )
            for query, hits in zip(queries, batched):
                expected = _reference_search(
                    store, query, top_k=4, metadata_filter={"dataset": dataset}
                )
                assert [(hit.doc_id, pytest.approx(hit.score)) for hit in hits] == [
                    (doc_id, pytest.approx(score)) for doc_id, score in expected
                ]

    def test_filter_masks_track_post_compaction_adds(self):
        store = self._store()
        self._force_compaction(store)
        store.add("doc-99", "hr corpus record number 99", {"dataset": "hr"})
        ids = store.search_ids(
            "record number 99", top_k=3, metadata_filter={"dataset": "hr"}
        )
        assert ids[0] == "doc-99"
        # A removed document never reappears through a stale mask.
        assert "doc-00" not in store.search_ids(
            "corpus record", top_k=15, metadata_filter={"dataset": "beaver"}
        )


class TestShardedVectorStore:
    DOCS = [
        ("d01", "count students per term", {"dataset": "beaver"}),
        ("d02", "average salary per department", {"dataset": "hr"}),
        ("d03", "count students per campus", {"dataset": "beaver"}),
        ("d04", "network device inventory report", {"dataset": "it"}),
        ("d05", "salary of employees by department", {"dataset": "hr"}),
        ("d06", "terms with highest enrollment", {"dataset": "beaver"}),
    ]

    def _both_stores(self):
        flat = VectorStore(EmbeddingModel(dimensions=64))
        sharded = ShardedVectorStore(EmbeddingModel(dimensions=64))
        for doc_id, text, metadata in self.DOCS:
            flat.add(doc_id, text, dict(metadata))
            sharded.add(doc_id, text, dict(metadata))
        return flat, sharded

    def test_sharding_is_score_transparent(self):
        # Rankings match the flat store exactly; scores match to floating-
        # point rounding (BLAS products over differently-partitioned
        # matrices can differ in the last ULP).
        flat, sharded = self._both_stores()
        for query in ("count students", "salary department", "device inventory"):
            for metadata_filter in (None, {"dataset": "beaver"}, {"dataset": "hr"}):
                expected = flat.search(query, top_k=4, metadata_filter=metadata_filter)
                actual = sharded.search(query, top_k=4, metadata_filter=metadata_filter)
                assert [(h.doc_id, pytest.approx(h.score)) for h in actual] == [
                    (h.doc_id, pytest.approx(h.score)) for h in expected
                ]

    def test_filtered_search_touches_one_shard(self):
        _, sharded = self._both_stores()
        assert sharded.shard_count == 3
        assert sharded.shard_sizes() == {"beaver": 3, "hr": 2, "it": 1}

    def test_legacy_snapshot_migrates_into_shards(self):
        flat, _ = self._both_stores()
        migrated = ShardedVectorStore.from_state(flat.state_dict())
        assert migrated.shard_count == 3
        assert sorted(migrated.all_ids()) == sorted(flat.all_ids())
        for query in ("count students", "salary department"):
            expected = flat.search(query, top_k=4)
            actual = migrated.search(query, top_k=4)
            assert [(h.doc_id, pytest.approx(h.score)) for h in actual] == [
                (h.doc_id, pytest.approx(h.score)) for h in expected
            ]

    def test_sharded_state_roundtrip(self):
        _, sharded = self._both_stores()
        clone = ShardedVectorStore.from_state(sharded.state_dict())
        assert clone.shard_sizes() == sharded.shard_sizes()
        query = "count students per term"
        assert [(h.doc_id, h.score) for h in clone.search(query, top_k=4)] == [
            (h.doc_id, h.score) for h in sharded.search(query, top_k=4)
        ]

    def test_cross_shard_replacement_moves_document(self):
        _, sharded = self._both_stores()
        sharded.add("d04", "invoices awaiting approval", {"dataset": "fin"})
        assert len(sharded) == len(self.DOCS)
        assert sharded.shard_sizes() == {"beaver": 3, "hr": 2, "fin": 1}
        hits = sharded.search("invoices", top_k=1, metadata_filter={"dataset": "fin"})
        assert [hit.doc_id for hit in hits] == ["d04"]

    def test_remove_drops_empty_shard(self):
        _, sharded = self._both_stores()
        sharded.remove("d04")
        assert "it" not in sharded.shard_sizes()
        assert "d04" not in sharded


class TestRetrievalCaches:
    def test_embedding_cache_serves_identical_vectors(self):
        model = EmbeddingModel(dimensions=64)
        first = model.embed("SELECT a FROM t")
        second = model.embed("SELECT a FROM t")
        assert second is first  # cache hit returns the same (read-only) array
        assert model.cache_info()["hits"] >= 1

    def test_observe_invalidates_embedding_cache(self):
        # The second observation shares only part of the query's vocabulary,
        # so IDF weighting becomes non-uniform and the direction must shift.
        model = EmbeddingModel(dimensions=64)
        before = model.embed("SELECT a FROM t").copy()
        model.observe("SELECT a FROM t")
        model.observe("SELECT b FROM t")
        after = model.embed("SELECT a FROM t")
        assert not np.allclose(before, after)  # IDF drift changed the vector
        # And the refreshed vector matches an uncached computation.
        fresh = EmbeddingModel(dimensions=64)
        fresh.observe("SELECT a FROM t")
        fresh.observe("SELECT b FROM t")
        np.testing.assert_allclose(after, fresh.embed("SELECT a FROM t"))

    def test_linking_cache_hits_on_repeat_queries(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        sql = "SELECT name FROM employees WHERE salary > 10"
        first = retriever.retrieve(sql)
        second = retriever.retrieve(sql)
        assert first.table_names == second.table_names
        info = retriever.linking_cache_info()
        assert info["hits"] >= 1
        assert info["misses"] >= 1

    def test_example_count_matches_retrieve(self, hr_schema):
        retriever = ContextRetriever(hr_schema, top_k_examples=2)
        sql = "SELECT COUNT(*) FROM employees WHERE dept_id = 3"
        assert retriever.example_count(sql) == 0
        retriever.record_annotation("SELECT COUNT(*) FROM employees", "How many employees?")
        retriever.record_annotation("SELECT name FROM employees", "All employee names.")
        retriever.record_annotation(
            "SELECT dept_name FROM departments", "All department names."
        )
        for probe in (sql, "SELECT name FROM employees WHERE salary > 5"):
            assert retriever.example_count(probe) == len(retriever.retrieve(probe).examples)

    def test_example_store_version_counts_mutations(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        store = retriever.example_store
        assert store.version == 0
        retriever.record_annotation("SELECT name FROM employees", "Names.")
        assert store.version == 1

    def test_linking_cache_respects_capacity(self, hr_schema):
        retriever = ContextRetriever(hr_schema, linking_cache_size=4)
        base = "SELECT name FROM employees WHERE salary > 10"
        retriever.retrieve(base)
        # Whitespace variants alias onto the same normalized entry; the
        # aliases must not grow the cache past its bound.
        for padding in range(20):
            retriever.retrieve(base + " " * (padding + 1))
        assert retriever.linking_cache_info()["size"] <= 4
