"""Tests for embeddings, the vector store, example store and context retriever."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RetrievalError
from repro.retrieval import (
    ContextRetriever,
    EmbeddingModel,
    ExampleStore,
    VectorStore,
    character_ngrams,
    cosine_similarity,
    normalize_whitespace,
    sentence_case,
    tokenize_text,
)


class TestText:
    def test_tokenize_splits_identifiers(self):
        assert tokenize_text("MOIRA_LIST_NAME equals 'EECS'") == [
            "moira", "list", "name", "equals", "eecs",
        ]

    def test_tokenize_removes_stopwords_optionally(self):
        tokens = tokenize_text("the count of the rows", remove_stopwords=True)
        assert "the" not in tokens and "of" not in tokens

    def test_character_ngrams(self):
        assert character_ngrams("abcd", 3) == ["abc", "bcd"]
        assert character_ngrams("ab", 3) == ["ab"]
        assert character_ngrams("", 3) == []

    def test_normalize_whitespace(self):
        assert normalize_whitespace("  a\n b\t c ") == "a b c"

    def test_sentence_case(self):
        assert sentence_case("hello world") == "Hello world."
        assert sentence_case("Already done.") == "Already done."
        assert sentence_case("") == ""


class TestEmbeddingModel:
    def test_embeddings_are_normalised(self):
        model = EmbeddingModel(dimensions=64)
        vector = model.embed("SELECT a FROM t")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_embeds_to_zero(self):
        assert np.allclose(EmbeddingModel().embed(""), 0.0)

    def test_similar_texts_score_higher_than_dissimilar(self):
        model = EmbeddingModel()
        for text in ("student enrollment per term", "employee salary by department",
                     "network device inventory"):
            model.observe(text)
        query = model.embed("student enrollment for the fall term")
        similar = model.embed("student enrollment per term")
        dissimilar = model.embed("network device inventory")
        assert cosine_similarity(query, similar) > cosine_similarity(query, dissimilar)

    def test_deterministic(self):
        left = EmbeddingModel().embed("SELECT a FROM t")
        right = EmbeddingModel().embed("SELECT a FROM t")
        assert np.allclose(left, right)

    def test_embed_batch_shape(self):
        model = EmbeddingModel(dimensions=32)
        batch = model.embed_batch(["a", "b", "c"])
        assert batch.shape == (3, 32)
        assert model.embed_batch([]).shape == (0, 32)

    @given(st.text(alphabet="abcdef ", min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_embedding_norm_is_at_most_one(self, text):
        vector = EmbeddingModel(dimensions=32).embed(text)
        assert np.linalg.norm(vector) <= 1.0 + 1e-9


class TestVectorStore:
    def test_add_search_roundtrip(self):
        store = VectorStore()
        store.add("1", "count students per term", {"dataset": "beaver"})
        store.add("2", "average salary per department", {"dataset": "hr"})
        hits = store.search("how many students in each term", top_k=1)
        assert hits[0].doc_id == "1"

    def test_metadata_filter(self):
        store = VectorStore()
        store.add("1", "count students", {"dataset": "a"})
        store.add("2", "count students", {"dataset": "b"})
        hits = store.search("count students", metadata_filter={"dataset": "b"})
        assert [hit.doc_id for hit in hits] == ["2"]

    def test_exclude_ids(self):
        store = VectorStore()
        store.add("1", "alpha beta")
        store.add("2", "alpha beta")
        hits = store.search("alpha beta", exclude_ids={"1"})
        assert [hit.doc_id for hit in hits] == ["2"]

    def test_remove_and_get(self):
        store = VectorStore()
        store.add("1", "text")
        assert store.get("1").text == "text"
        store.remove("1")
        assert "1" not in store
        with pytest.raises(RetrievalError):
            store.get("1")
        with pytest.raises(RetrievalError):
            store.remove("1")

    def test_empty_doc_id_rejected(self):
        with pytest.raises(RetrievalError):
            VectorStore().add("", "text")

    def test_top_k_zero_returns_empty(self):
        store = VectorStore()
        store.add("1", "text")
        assert store.search("text", top_k=0) == []


class TestExampleStore:
    def test_cold_start_is_empty(self):
        store = ExampleStore()
        assert store.is_empty
        assert store.retrieve("SELECT a FROM t") == []

    def test_add_and_retrieve(self):
        store = ExampleStore()
        store.add("SELECT COUNT(*) FROM students", "How many students are there?", dataset="beaver")
        store.add("SELECT AVG(salary) FROM employees", "What is the average salary?", dataset="hr")
        results = store.retrieve("SELECT COUNT(*) FROM students WHERE term = 'fall'", top_k=1)
        assert results[0].nl == "How many students are there?"

    def test_identical_skeleton_excluded(self):
        store = ExampleStore()
        store.add("SELECT a FROM t WHERE b = 'x'", "description one")
        assert store.retrieve("SELECT a FROM t WHERE b = 'y'") == []
        assert len(store.retrieve("SELECT a FROM t WHERE b = 'y'", exclude_identical=False)) == 1

    def test_rejects_empty_fields(self):
        with pytest.raises(RetrievalError):
            ExampleStore().add("", "text")
        with pytest.raises(RetrievalError):
            ExampleStore().add("SELECT 1", "   ")

    def test_seed_from_pairs(self):
        store = ExampleStore()
        assert store.seed_from_pairs([("SELECT 1", "one"), ("SELECT 2", "two")]) == 2
        assert len(store) == 2

    def test_dataset_filter(self):
        store = ExampleStore()
        store.add("SELECT a FROM students", "students a", dataset="beaver")
        store.add("SELECT a FROM singers", "singers a", dataset="spider")
        results = store.retrieve("SELECT b FROM students", dataset="beaver")
        assert all(example.dataset == "beaver" for example in results)

    def test_get_unknown_raises(self):
        with pytest.raises(RetrievalError):
            ExampleStore().get("missing")


class TestContextRetriever:
    def test_retrieves_relevant_tables_via_sql(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        context = retriever.retrieve("SELECT name FROM employees WHERE salary > 10")
        assert context.table_names == ["employees"]
        assert "TABLE employees" in context.schema_text()

    def test_retrieves_joined_tables(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        context = retriever.retrieve(
            "SELECT e.name, d.dept_name FROM employees e JOIN departments d ON e.dept_id = d.dept_id"
        )
        assert set(context.table_names) == {"employees", "departments"}
        assert "dept_id" in context.ambiguous_columns

    def test_examples_accumulate_and_are_retrieved(self, hr_schema):
        retriever = ContextRetriever(hr_schema, top_k_examples=2)
        retriever.record_annotation("SELECT COUNT(*) FROM employees", "How many employees?")
        context = retriever.retrieve("SELECT COUNT(*) FROM employees WHERE dept_id = 1")
        assert len(context.examples) == 1
        assert context.examples[0].nl == "How many employees?"

    def test_unknown_table_reported(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        context = retriever.retrieve("SELECT x FROM payroll_history")
        assert "payroll_history" in context.unresolved_tables

    def test_unparseable_query_falls_back_to_text_linking(self, hr_schema):
        retriever = ContextRetriever(hr_schema)
        context = retriever.retrieve("employees salary report !!!")
        assert "employees" in context.table_names
