"""Shared fixtures for the test suite.

Workload fixtures are session-scoped and use a tiny row scale so the whole
suite stays fast while still exercising the full generation/execution paths.
"""

from __future__ import annotations

import pytest

from repro.engine import Database
from repro.schema import ColumnSchema, DatabaseSchema, ForeignKey, TableSchema
from repro.workloads import build_benchmark


@pytest.fixture()
def hr_schema() -> DatabaseSchema:
    """A small two-table HR schema used across unit tests."""
    return DatabaseSchema(
        name="hr",
        tables=[
            TableSchema(
                name="employees",
                columns=[
                    ColumnSchema("emp_id", "INT", primary_key=True, nullable=False),
                    ColumnSchema("name", "TEXT"),
                    ColumnSchema("salary", "REAL"),
                    ColumnSchema("dept_id", "INT"),
                    ColumnSchema("hire_date", "DATE"),
                ],
                foreign_keys=[ForeignKey("dept_id", "departments", "dept_id")],
            ),
            TableSchema(
                name="departments",
                columns=[
                    ColumnSchema("dept_id", "INT", primary_key=True, nullable=False),
                    ColumnSchema("dept_name", "TEXT"),
                    ColumnSchema("budget", "REAL"),
                ],
            ),
        ],
    )


@pytest.fixture()
def hr_database() -> Database:
    """A populated HR database matching :func:`hr_schema`."""
    database = Database("hr")
    database.execute(
        "CREATE TABLE departments (dept_id INT PRIMARY KEY, dept_name TEXT, budget REAL)"
    )
    database.execute(
        "CREATE TABLE employees (emp_id INT PRIMARY KEY, name TEXT, salary REAL, "
        "dept_id INT, hire_date DATE)"
    )
    database.execute(
        "INSERT INTO departments (dept_id, dept_name, budget) VALUES "
        "(1, 'Engineering', 500000), (2, 'Marketing', 200000), (3, 'Research', 300000)"
    )
    database.execute(
        "INSERT INTO employees (emp_id, name, salary, dept_id, hire_date) VALUES "
        "(1, 'Alice', 120000, 1, '2019-03-01'), "
        "(2, 'Bob', 95000, 1, '2020-07-15'), "
        "(3, 'Carol', 88000, 2, '2018-01-20'), "
        "(4, 'Dan', 72000, 2, '2021-11-05'), "
        "(5, 'Eve', 150000, 3, '2017-06-30'), "
        "(6, 'Frank', 67000, NULL, '2022-02-14')"
    )
    return database


@pytest.fixture(scope="session")
def tiny_spider():
    """A tiny Spider-like workload (session-scoped for speed)."""
    return build_benchmark("Spider", seed=11, row_scale=0.002, query_count=10)


@pytest.fixture(scope="session")
def tiny_beaver():
    """A tiny Beaver-like workload (session-scoped for speed)."""
    return build_benchmark("Beaver", seed=11, row_scale=0.0008, query_count=10)


@pytest.fixture(scope="session")
def tiny_bird():
    """A tiny Bird-like workload (session-scoped for speed)."""
    return build_benchmark("Bird", seed=11, row_scale=0.0008, query_count=10)
